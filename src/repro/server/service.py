"""The embeddable query service: a bounded pool over one engine.

:class:`QueryService` is the concurrency *and* resilience contract of
the serving layer made concrete:

- a fixed pool of worker threads executes engine calls; each call binds
  to the store's current :class:`~repro.storage.snapshot.StoreSnapshot`,
  so a request reads one consistent epoch end to end;
- admission control bounds *total* in-flight work at ``workers +
  queue_depth``; a request beyond that is shed immediately with
  :class:`~repro.errors.ServiceOverloaded` rather than queued without
  bound (fail fast beats unbounded latency);
- every request carries a deadline that covers *queue wait too*: a
  request that burns its whole deadline waiting for an executor slot
  raises :class:`~repro.errors.ServiceTimeout` without ever running,
  and the wait is accounted in metrics (``queue_wait_mean/max``);
- the service is self-healing around storage corruption: a
  :class:`~repro.server.health.CircuitBreaker` trips on repeated
  :class:`~repro.errors.PageCorruptionError` and the service serves
  degraded (``strict=False``) answers — always subsets of the
  accessible nodes, flagged ``degraded: true`` — until a strict probe
  a probe-interval later verifies the store clean again; brownout
  tiers shed the ResultCache/RunCache opt-ins before any request is
  shed; the whole state machine is visible through the ``health``
  request type;
- a :class:`~repro.server.chaos.ChaosPlan` can be attached to inject
  service-level faults (latency spikes, forced overload, snapshot
  acquisition failures, cache-poisoning guard mode) for the chaos
  suite and ``serve --chaos-seed``;
- metrics aggregate request counts and latency with the engine's three
  cache layers, the class directory, the store's buffer/latch counters,
  the current snapshot epoch, and the health report, giving the serving
  picture in one dictionary.

:meth:`QueryService.handle` additionally speaks the wire protocol's
request dictionaries directly (``ping`` / ``query`` / ``update`` /
``metrics`` / ``health``), so the whole service is testable without
opening a socket.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Dict, Optional

from repro.errors import (
    BadRequest,
    PageCorruptionError,
    ReproError,
    ServiceError,
    ServiceOverloaded,
    ServiceTimeout,
    ServiceUnavailable,
)
from repro.exec.kernels import active_kernels, available_backends
from repro.nok.engine import QueryEngine
from repro.secure.dissemination import HOIST, PRUNE, stream_answer_fragments
from repro.secure.semantics import CHO, SEMANTICS
from repro.server.chaos import ChaosPlan
from repro.server.health import BREAKER_HALF_OPEN, HealthConfig, HealthModel
from repro.server.protocol import (
    FRAME_BEGIN,
    FRAME_END,
    FRAME_FRAGMENT,
    MAX_REQUEST_BYTES,
    encode_error,
)


@dataclass
class ServiceConfig:
    """Sizing knobs for a :class:`QueryService`."""

    workers: int = 4
    #: extra requests admitted beyond the busy workers before shedding
    queue_depth: int = 16
    #: per-request deadline in seconds (``None`` disables)
    timeout: Optional[float] = 30.0
    #: largest request frame the wire servers accept for this service;
    #: the protocol module constant is only the default, so tests and
    #: deployments tune the cap per service instead of monkeypatching
    max_request_bytes: int = MAX_REQUEST_BYTES

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServiceError("service needs at least one worker")
        if self.queue_depth < 0:
            raise ServiceError("queue depth cannot be negative")
        if self.timeout is not None and self.timeout <= 0:
            raise ServiceError("timeout must be positive (or None)")
        if self.max_request_bytes < 1:
            raise ServiceError("max_request_bytes must be positive")


def _stats_body(stats) -> Dict[str, Any]:
    """The wire shape of one evaluation's :class:`EvalStats` — shared by
    the v1 response body, the v1 ``fragments`` body, and the v2 ``end``
    frame, so every transport reports identical accounting."""
    return {
        "access_checks": stats.access_checks,
        "probes_saved": stats.probes_saved,
        "run_cache_hits": stats.run_cache_hits,
        "run_cache_misses": stats.run_cache_misses,
        "result_cache_hits": stats.result_cache_hits,
        "logical_page_reads": stats.logical_page_reads,
        "physical_page_reads": stats.physical_page_reads,
        "access_class": stats.access_class,
        "static_allow": stats.static_allow,
        "static_deny": stats.static_deny,
        "corrupted_pages": len(stats.corrupted_pages),
        "wall_time": stats.wall_time,
    }


class QueryService:
    """Thread-safe, self-healing query/update serving over one engine."""

    def __init__(
        self,
        engine: QueryEngine,
        config: Optional[ServiceConfig] = None,
        chaos: Optional[ChaosPlan] = None,
        health_config: Optional[HealthConfig] = None,
    ):
        self.engine = engine
        self.config = config or ServiceConfig()
        self.chaos = chaos
        self._limit = self.config.workers + self.config.queue_depth
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-query"
        )
        self._lock = threading.Lock()
        self._inflight = 0
        self._closed = False
        # -- counters (all guarded by _lock) --
        self._requests = 0
        self._completed = 0
        self._failed = 0
        self._shed = 0
        self._timeouts = 0
        self._timeouts_in_queue = 0
        self._degraded_served = 0
        self._latency_total = 0.0
        self._latency_max = 0.0
        self._queue_wait_total = 0.0
        self._queue_wait_max = 0.0
        self._last_quarantine_probe = 0.0
        # -- streaming counters (also guarded by _lock) --
        self._streams_started = 0
        self._streams_completed = 0
        self._streams_failed = 0
        self._streams_abandoned = 0
        self._fragments_streamed = 0
        self._ttff_total = 0.0
        self._ttff_max = 0.0
        self._ttff_count = 0
        store = engine.store
        self.health = HealthModel(
            health_config,
            quarantine_count=(
                (lambda: len(store.quarantined)) if store is not None else None
            ),
            recovery=getattr(store, "last_recovery", None) if store else None,
        )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Stop accepting work and wait for in-flight requests."""
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def executor(self) -> ThreadPoolExecutor:
        """The service's worker pool.

        The async server drives stream pulls through it
        (``loop.run_in_executor(service.executor, ...)``), so the pool
        that bounds drained evaluations bounds fragment production too.
        """
        return self._pool

    # -- execution core ----------------------------------------------------

    def _submit(self, fn: Callable[[], Any], timeout: Optional[float]) -> Any:
        """Run ``fn`` on the pool under admission control + deadline.

        The deadline covers the whole stay in the service: the worker
        first checks how long the request waited for its slot, and a
        request whose deadline was burned in the queue raises
        :class:`~repro.errors.ServiceTimeout` without running at all.
        """
        deadline = timeout if timeout is not None else self.config.timeout
        with self._lock:
            if self._closed:
                raise ServiceError("service is closed")
            if self._inflight >= self._limit:
                self._shed += 1
                raise ServiceOverloaded(self._inflight, self._limit)
            if self.chaos is not None and self.chaos.should_overload():
                self._shed += 1
                raise ServiceOverloaded(self._inflight, self._limit)
            self._inflight += 1
            self._requests += 1

        started = perf_counter()

        def run() -> Any:
            queue_wait = perf_counter() - started
            with self._lock:
                self._queue_wait_total += queue_wait
                self._queue_wait_max = max(self._queue_wait_max, queue_wait)
            try:
                if deadline is not None and queue_wait >= deadline:
                    with self._lock:
                        self._timeouts_in_queue += 1
                    raise ServiceTimeout(deadline, waited=queue_wait)
                if self.chaos is not None:
                    spike = self.chaos.service_latency()
                    if spike > 0.0:
                        time.sleep(spike)
                return fn()
            finally:
                elapsed = perf_counter() - started
                with self._lock:
                    self._inflight -= 1
                    self._latency_total += elapsed
                    self._latency_max = max(self._latency_max, elapsed)

        try:
            future = self._pool.submit(run)
        except BaseException:
            with self._lock:
                self._inflight -= 1
            raise
        try:
            result = future.result(timeout=deadline)
        except FutureTimeout:
            # The worker thread cannot be interrupted; it will finish and
            # release its slot on its own. The caller just stops waiting.
            with self._lock:
                self._timeouts += 1
                self._failed += 1
            self.health.record_outcome(False)
            raise ServiceTimeout(deadline) from None
        except ServiceTimeout:
            # The worker found the deadline burned in the queue.
            with self._lock:
                self._timeouts += 1
                self._failed += 1
            self.health.record_outcome(False)
            raise
        except BaseException:
            with self._lock:
                self._failed += 1
            self.health.record_outcome(False)
            raise
        with self._lock:
            self._completed += 1
        self.health.record_outcome(True)
        return result

    # -- public request API ------------------------------------------------

    def evaluate(
        self,
        query: str,
        subject=None,
        semantics: str = CHO,
        ordered: bool = False,
        limit: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Evaluate one query on the pool; returns a plain-data response.

        The worker pins the store's current snapshot first, so the
        response can name the epoch the answer is consistent with.

        Resilience semantics: with the circuit breaker closed the
        evaluation is strict and the response is a correct Proposition-1
        answer for its epoch. On :class:`~repro.errors.PageCorruptionError`
        the corruption feeds the breaker and the request is re-run
        degraded (``strict=False``): corrupt pages are quarantined and
        skipped, the answer is a *subset* of the accessible nodes, and
        the response carries ``degraded: true``. An open breaker skips
        the doomed strict attempt entirely until the probe interval
        elapses, then the next request clears the quarantine and probes
        strictly — success closes the breaker (self-healing after
        transient corruption), failure re-opens it.
        """
        if semantics not in SEMANTICS:
            raise ServiceError(f"unknown semantics {semantics!r}")

        def work() -> Dict[str, Any]:
            if self.chaos is not None and self.chaos.should_fail_snapshot():
                raise ServiceUnavailable(
                    "injected snapshot acquisition failure"
                )
            store = self.engine.store
            snapshot = store.snapshot() if store is not None else None

            with self._lock:
                inflight = self._inflight
            tier = self.health.brownout_tier(inflight, self._limit)
            caches_poisonable = (
                self.chaos is not None and self.chaos.caches_disabled()
            )
            use_run_cache = tier < 2 and not caches_poisonable
            use_result_cache = tier < 1 and not caches_poisonable

            breaker = self.health.breaker
            strict = breaker.allow_strict()
            probing = strict and breaker.state == BREAKER_HALF_OPEN
            if (
                not probing
                and strict
                and store is not None
                and store.quarantined
            ):
                # Corruption below the breaker's trip threshold still
                # quarantines pages; reverify them at the probe cadence
                # even with the breaker closed, or the service would
                # stay degraded forever after one transient flip.
                now = time.monotonic()
                with self._lock:
                    if (
                        now - self._last_quarantine_probe
                        >= self.health.config.probe_interval_s
                    ):
                        self._last_quarantine_probe = now
                        probing = True
            if probing and store is not None:
                # Optimistic heal: transient corruption re-verifies clean
                # from disk; rotten pages will fail the probe below and
                # re-enter quarantine.
                store.clear_quarantine()
                snapshot = store.snapshot()

            def run_once(run_strict: bool):
                return self.engine.evaluate(
                    query,
                    subject=subject,
                    semantics=semantics,
                    ordered=ordered,
                    limit=limit,
                    snapshot=snapshot,
                    strict=run_strict,
                    use_result_cache=use_result_cache and run_strict,
                    use_run_cache=use_run_cache,
                )

            degraded = not strict
            try:
                result = run_once(strict)
            except PageCorruptionError:
                self.health.record_corruption()
                degraded = True
                result = run_once(False)
            else:
                if result.stats.corrupted_pages:
                    # strict=False path reported (and quarantined)
                    # corruption without raising
                    self.health.record_corruption(
                        len(result.stats.corrupted_pages)
                    )
                    degraded = True
                elif probing:
                    breaker.record_probe_success()
            if strict and not degraded:
                self.health.record_strict_success()
            if degraded:
                with self._lock:
                    self._degraded_served += 1
            return {
                "positions": result.positions,
                "n_answers": result.n_answers,
                "epoch": snapshot.epoch if snapshot is not None else 0,
                "degraded": degraded,
                "stats": _stats_body(result.stats),
            }

        return self._submit(work, timeout)

    def update(
        self,
        kind: str,
        start: int,
        end: int,
        subject: Optional[int] = None,
        value: Optional[bool] = None,
        mask: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Apply one Section 3.4 accessibility update through the pool.

        Updates serialize on the store's writer lock; running them on the
        same pool keeps the admission limit a bound on *all* service
        work, and gives updates the same deadline discipline as queries.
        Updates never run degraded — a write against a corrupt store
        surfaces its error instead of guessing.
        """
        store = self.engine.store
        if store is None:
            raise ServiceError("service engine has no store to update")

        def work() -> Dict[str, Any]:
            if kind == "subject_range":
                if subject is None or value is None:
                    raise ServiceError(
                        "subject_range update needs subject= and value="
                    )
                cost = store.update_subject_range(start, end, subject, value)
            elif kind == "range_mask":
                if mask is None:
                    raise ServiceError("range_mask update needs mask=")
                cost = store.update_range_mask(start, end, mask)
            else:
                raise ServiceError(f"unknown update kind {kind!r}")
            return {
                "epoch": store.epoch,
                "pages_rewritten": cost.pages_rewritten,
                "transition_delta": cost.transition_delta,
            }

        return self._submit(work, timeout)

    # -- fragment streaming ------------------------------------------------

    def _fragment_frames(
        self,
        query: str,
        subject,
        semantics: str,
        ordered: bool,
        limit: Optional[int],
        policy: str,
    ) -> "Any":
        """The per-request streaming core: begin → fragments → end.

        Admission, deadlines, and metrics live in the callers
        (:meth:`stream` for the wire, :meth:`evaluate_fragments` for the
        buffered v1 shape); this generator owns only the resilience
        decisions — snapshot pinning, brownout cache shedding, the
        breaker's strict/degraded choice — mirroring :meth:`evaluate`.
        Streams never run the half-open strict *probe* (a probe must be
        cheap and atomic; a stream is neither) — healing stays on the
        drained path.
        """
        if self.chaos is not None and self.chaos.should_fail_snapshot():
            raise ServiceUnavailable("injected snapshot acquisition failure")
        store = self.engine.store
        snapshot = store.snapshot() if store is not None else None

        with self._lock:
            inflight = self._inflight
        tier = self.health.brownout_tier(inflight, self._limit)
        caches_poisonable = self.chaos is not None and self.chaos.caches_disabled()
        use_run_cache = tier < 2 and not caches_poisonable

        strict = self.health.breaker.allow_strict()
        fragments = stream_answer_fragments(
            self.engine,
            query,
            subject,
            semantics=semantics,
            policy=policy,
            limit=limit,
            ordered=ordered,
            strict=strict,
            snapshot=snapshot,
            use_run_cache=use_run_cache,
        )
        epoch = fragments.epoch
        yield {"frame": FRAME_BEGIN, "epoch": epoch, "strict": strict}
        count = 0
        try:
            try:
                for position, xml in fragments:
                    yield {
                        "frame": FRAME_FRAGMENT,
                        "seq": count,
                        "position": position,
                        "xml": xml,
                    }
                    count += 1
            except PageCorruptionError:
                # Strict streams surface corruption as a typed error
                # frame; the breaker hears about it so the *next* request
                # (or stream retry) runs degraded around the quarantine.
                self.health.record_corruption()
                raise
            stats = fragments.stats
            degraded = (not strict) or bool(stats.corrupted_pages)
            if strict and degraded:
                self.health.record_corruption(len(stats.corrupted_pages))
            elif strict:
                self.health.record_strict_success()
            if degraded:
                with self._lock:
                    self._degraded_served += 1
            yield {
                "frame": FRAME_END,
                "epoch": epoch,
                "degraded": degraded,
                "n_fragments": count,
                "policy": policy,
                "stats": _stats_body(stats),
            }
        finally:
            fragments.close()

    def stream(
        self,
        query: str,
        subject=None,
        semantics: str = CHO,
        ordered: bool = False,
        limit: Optional[int] = None,
        policy: str = PRUNE,
        timeout: Optional[float] = None,
    ):
        """Stream one query's disseminated answers as protocol frames.

        Returns an iterator of frame dictionaries: ``begin``, zero or
        more ``fragment`` frames, then ``end`` — raising a typed
        :class:`~repro.errors.ReproError` at any point instead of a
        frame (callers turn it into a terminal ``error`` frame). The
        whole stream reads one pinned snapshot epoch.

        Concurrency contract: the stream occupies one admission slot
        from its first pull to its last, so ``workers + queue_depth``
        bounds in-flight streams and drained requests *together*; actual
        fragment production is driven by whoever pulls the iterator (the
        async server pulls via the service pool).

        Deadline contract: the deadline covers queue wait (creation to
        first pull) plus cumulative *service-side production time* — the
        time spent computing frames — not wall-clock stream duration, so
        flow control pausing a stream for a slow reader can never time
        it out by itself.
        """
        if semantics not in SEMANTICS:
            raise ServiceError(f"unknown semantics {semantics!r}")
        if policy not in (PRUNE, HOIST):
            raise BadRequest(f"unknown dissemination policy {policy!r}")
        if not isinstance(query, str) or not query:
            raise BadRequest("stream request needs a query string")
        if subject is None:
            raise BadRequest("fragment streaming requires a subject")
        accepted = perf_counter()
        deadline = timeout if timeout is not None else self.config.timeout

        def frames():
            with self._lock:
                if self._closed:
                    raise ServiceError("service is closed")
                if self._inflight >= self._limit:
                    self._shed += 1
                    raise ServiceOverloaded(self._inflight, self._limit)
                if self.chaos is not None and self.chaos.should_overload():
                    self._shed += 1
                    raise ServiceOverloaded(self._inflight, self._limit)
                self._inflight += 1
                self._requests += 1
                self._streams_started += 1
            started = perf_counter()
            queue_wait = started - accepted
            produced = 0.0
            outcome = "failed"
            try:
                with self._lock:
                    self._queue_wait_total += queue_wait
                    self._queue_wait_max = max(self._queue_wait_max, queue_wait)
                if deadline is not None and queue_wait >= deadline:
                    with self._lock:
                        self._timeouts_in_queue += 1
                        self._timeouts += 1
                    raise ServiceTimeout(deadline, waited=queue_wait)
                if self.chaos is not None:
                    spike = self.chaos.service_latency()
                    if spike > 0.0:
                        time.sleep(spike)
                inner = self._fragment_frames(
                    query, subject, semantics, ordered, limit, policy
                )
                first_fragment = True
                end_sent = False
                while True:
                    pull_started = perf_counter()
                    try:
                        frame = next(inner)
                    except StopIteration:
                        break
                    finally:
                        produced += perf_counter() - pull_started
                    if deadline is not None and queue_wait + produced >= deadline:
                        with self._lock:
                            self._timeouts += 1
                        raise ServiceTimeout(deadline)
                    if frame.get("frame") == FRAME_FRAGMENT:
                        if first_fragment:
                            first_fragment = False
                            ttff = perf_counter() - accepted
                            with self._lock:
                                self._ttff_total += ttff
                                self._ttff_max = max(self._ttff_max, ttff)
                                self._ttff_count += 1
                        with self._lock:
                            self._fragments_streamed += 1
                    elif frame.get("frame") == FRAME_END:
                        end_sent = True
                    yield frame
                outcome = "completed"
            except GeneratorExit:
                # Closed instead of drained. If the end frame already
                # went out the protocol completed — the consumer just
                # skipped the final (empty) pull; before that it is a
                # true abandonment (client disconnect, early close) and
                # the plan simply stops reading pages. Not a failure
                # either way.
                outcome = "completed" if end_sent else "abandoned"
                raise
            finally:
                elapsed = queue_wait + produced
                with self._lock:
                    self._inflight -= 1
                    self._latency_total += elapsed
                    self._latency_max = max(self._latency_max, elapsed)
                    if outcome == "completed":
                        self._completed += 1
                        self._streams_completed += 1
                    elif outcome == "abandoned":
                        self._streams_abandoned += 1
                    else:
                        self._failed += 1
                        self._streams_failed += 1
                if outcome != "abandoned":
                    self.health.record_outcome(outcome == "completed")

        return frames()

    def evaluate_fragments(
        self,
        query: str,
        subject=None,
        semantics: str = CHO,
        ordered: bool = False,
        limit: Optional[int] = None,
        policy: str = PRUNE,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """The buffered (protocol v1) shape of :meth:`stream`.

        Drains the same frame generator on the worker pool and returns
        one response body — ``fragments`` as ``[position, xml]`` pairs
        plus the ``end`` frame's accounting — so a v1 client sees
        byte-identical fragments to a v2 stream, at the cost of
        buffering the whole answer server-side (exactly the cost the v2
        stream exists to avoid).
        """
        if semantics not in SEMANTICS:
            raise ServiceError(f"unknown semantics {semantics!r}")
        if policy not in (PRUNE, HOIST):
            raise BadRequest(f"unknown dissemination policy {policy!r}")
        if subject is None:
            raise BadRequest("fragment dissemination requires a subject")

        def work() -> Dict[str, Any]:
            body: Dict[str, Any] = {"fragments": []}
            for frame in self._fragment_frames(
                query, subject, semantics, ordered, limit, policy
            ):
                kind = frame.get("frame")
                if kind == FRAME_BEGIN:
                    body["epoch"] = frame["epoch"]
                    body["strict"] = frame["strict"]
                elif kind == FRAME_FRAGMENT:
                    body["fragments"].append([frame["position"], frame["xml"]])
                elif kind == FRAME_END:
                    for key, value in frame.items():
                        if key != "frame":
                            body[key] = value
            return body

        return self._submit(work, timeout)

    def handle_stream(self, request: Dict[str, Any]):
        """Serve one wire request as an iterator of response frames.

        The streaming counterpart of :meth:`handle`: takes the protocol
        request dictionary (``op`` must be ``query``), returns the frame
        iterator. Malformed requests raise :class:`BadRequest` eagerly;
        mid-stream failures raise out of the iterator — the wire server
        maps either onto a terminal typed ``error`` frame.
        """
        if not isinstance(request, dict):
            raise BadRequest("request must be a JSON object")
        if request.get("op") != "query":
            raise BadRequest("only query requests can stream")
        return self.stream(
            request.get("query"),
            subject=request.get("subject"),
            semantics=request.get("semantics", CHO),
            ordered=bool(request.get("ordered", False)),
            limit=request.get("limit"),
            policy=request.get("policy", PRUNE),
            timeout=request.get("timeout"),
        )

    def health_report(self) -> Dict[str, Any]:
        """The ``health`` wire payload (never touches the pool)."""
        with self._lock:
            inflight = self._inflight
            closed = self._closed
        report = self.health.report(inflight, self._limit)
        if closed:
            report["state"] = "unavailable"
            report["closed"] = True
        return report

    def metrics(self) -> Dict[str, Any]:
        """One dictionary covering the whole serving stack."""
        with self._lock:
            served = self._completed
            inflight = self._inflight
            report: Dict[str, Any] = {
                "requests": self._requests,
                "completed": served,
                "failed": self._failed,
                "shed": self._shed,
                "timeouts": self._timeouts,
                "timeouts_in_queue": self._timeouts_in_queue,
                "degraded_served": self._degraded_served,
                "inflight": inflight,
                "workers": self.config.workers,
                "admission_limit": self._limit,
                "latency_mean": (self._latency_total / served) if served else 0.0,
                "latency_max": self._latency_max,
                "queue_wait_mean": (
                    (self._queue_wait_total / self._requests)
                    if self._requests
                    else 0.0
                ),
                "queue_wait_max": self._queue_wait_max,
            }
            ttff_n = self._ttff_count
            report["streams"] = {
                "started": self._streams_started,
                "completed": self._streams_completed,
                "failed": self._streams_failed,
                "abandoned": self._streams_abandoned,
                "fragments": self._fragments_streamed,
                "ttff_mean": (self._ttff_total / ttff_n) if ttff_n else 0.0,
                "ttff_max": self._ttff_max,
            }
        report["health"] = self.health.report(inflight, self._limit)
        if self.chaos is not None:
            report["chaos_injected"] = self.chaos.stats()
        report["plan_cache"] = self.engine.plan_cache.stats()
        report["run_cache"] = self.engine.run_cache.stats()
        report["result_cache"] = self.engine.result_cache.stats()
        report["classes"] = self.engine.class_directory.stats()
        store = self.engine.store
        if store is not None:
            report["epoch"] = store.epoch
            snap = store._snapshot
            report["snapshot_frozen_pages"] = (
                snap.frozen_page_count() if snap is not None else 0
            )
            report["buffer"] = store.buffer.stats.snapshot()
            cache = getattr(store, "decoded_cache", None)
            if cache is not None:
                report["decoded_page_cache"] = cache.stats.snapshot()
            report["columnar_decodes"] = getattr(store, "columnar_decodes", 0)
        report["kernels"] = {
            "backend": active_kernels().name,
            "available": available_backends(),
        }
        return report

    # -- wire-protocol dispatch -------------------------------------------

    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Serve one protocol request dictionary; never raises.

        Errors come back as ``{"ok": false, "error": <class>, "message":
        ..., "retriable": ...}`` so one malformed or shed request cannot
        tear down a connection serving others.
        """
        try:
            if not isinstance(request, dict):
                raise BadRequest("request must be a JSON object")
            op = request.get("op")
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "metrics":
                return {"ok": True, "metrics": self.metrics()}
            if op == "health":
                return {"ok": True, "health": self.health_report()}
            if op == "query":
                query = request.get("query")
                if not isinstance(query, str) or not query:
                    raise BadRequest("query request needs a query string")
                if request.get("fragments"):
                    body = self.evaluate_fragments(
                        query,
                        subject=request.get("subject"),
                        semantics=request.get("semantics", CHO),
                        ordered=bool(request.get("ordered", False)),
                        limit=request.get("limit"),
                        policy=request.get("policy", PRUNE),
                        timeout=request.get("timeout"),
                    )
                    return {"ok": True, **body}
                body = self.evaluate(
                    query,
                    subject=request.get("subject"),
                    semantics=request.get("semantics", CHO),
                    ordered=bool(request.get("ordered", False)),
                    limit=request.get("limit"),
                    timeout=request.get("timeout"),
                )
                return {"ok": True, **body}
            if op == "update":
                body = self.update(
                    request.get("kind", ""),
                    int(request.get("start", -1)),
                    int(request.get("end", -1)),
                    subject=request.get("subject"),
                    value=request.get("value"),
                    mask=request.get("mask"),
                    timeout=request.get("timeout"),
                )
                return {"ok": True, **body}
            raise BadRequest(f"unknown op {op!r}")
        except ReproError as exc:
            return encode_error(exc)
        except (TypeError, ValueError) as exc:
            return encode_error(BadRequest(str(exc)))
