"""Newline-delimited JSON: the wire format of ``repro-dol serve``.

One request per line, one response line per request, in order:

.. code-block:: text

    -> {"op": "ping"}
    <- {"ok": true, "pong": true}
    -> {"op": "query", "query": "//item/name", "subject": 3}
    <- {"ok": true, "positions": [...], "n_answers": 4, "epoch": 7, ...}
    -> {"op": "update", "kind": "subject_range", "start": 10, "end": 90,
        "subject": 3, "value": false}
    <- {"ok": true, "epoch": 8, "pages_rewritten": 2, ...}
    -> {"op": "metrics"}
    <- {"ok": true, "metrics": {...}}

Failures are in-band — ``{"ok": false, "error": "ServiceOverloaded",
"message": "..."}`` — so a shed or malformed request never drops the
connection. The format is trivially scriptable (``nc`` + ``jq``) and
keeps the server free of any framing beyond ``\\n``.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.errors import ServiceError

#: protect the line reader against garbage/abusive peers
MAX_REQUEST_BYTES = 1 << 20


def decode_request(line: "str | bytes") -> Dict[str, Any]:
    """Parse one request line into a dictionary (:class:`ServiceError` on
    anything that is not a single JSON object)."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ServiceError(f"request is not valid UTF-8: {exc}")
    if len(line) > MAX_REQUEST_BYTES:
        raise ServiceError("request line exceeds the 1 MiB limit")
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ServiceError(f"request is not valid JSON: {exc}")
    if not isinstance(payload, dict):
        raise ServiceError("request must be a JSON object")
    return payload


def encode_response(response: Dict[str, Any]) -> bytes:
    """Serialize one response dictionary to a single UTF-8 line."""
    return (json.dumps(response, separators=(",", ":")) + "\n").encode("utf-8")


def error_response(exc: BaseException) -> Dict[str, Any]:
    """The in-band error shape used by the service and the wire server."""
    return {"ok": False, "error": type(exc).__name__, "message": str(exc)}
