"""Newline-delimited JSON: the wire format of ``repro-dol serve``.

One request per line, one response line per request, in order:

.. code-block:: text

    -> {"op": "ping"}
    <- {"ok": true, "pong": true}
    -> {"op": "query", "query": "//item/name", "subject": 3}
    <- {"ok": true, "positions": [...], "n_answers": 4, "epoch": 7, ...}
    -> {"op": "update", "kind": "subject_range", "start": 10, "end": 90,
        "subject": 3, "value": false}
    <- {"ok": true, "epoch": 8, "pages_rewritten": 2, ...}
    -> {"op": "metrics"}
    <- {"ok": true, "metrics": {...}}

Failures are in-band — ``{"ok": false, "error": "ServiceOverloaded",
"message": "..."}`` — so a shed or malformed request never drops the
connection. The format is trivially scriptable (``nc`` + ``jq``) and
keeps the server free of any framing beyond ``\\n``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Type

from repro import errors as _errors
from repro.errors import BadRequest, ReproError, ServiceError

#: protect the line reader against garbage/abusive peers
MAX_REQUEST_BYTES = 1 << 20


def _collect_error_registry() -> Dict[str, Type[ReproError]]:
    """Every :class:`ReproError` subclass, by wire name.

    The hierarchy lives entirely in :mod:`repro.errors`, so module
    introspection finds the complete set; the transitive
    ``__subclasses__`` walk additionally picks up any subclass defined
    elsewhere that has been imported.
    """
    registry: Dict[str, Type[ReproError]] = {}
    seen = set()
    stack: list = [ReproError]
    for name in dir(_errors):
        obj = getattr(_errors, name)
        if isinstance(obj, type) and issubclass(obj, ReproError):
            stack.append(obj)
    while stack:
        cls = stack.pop()
        if cls in seen:
            continue
        seen.add(cls)
        registry[cls.__name__] = cls
        stack.extend(cls.__subclasses__())
    return registry


#: wire name -> exception class; the error taxonomy of the protocol
ERROR_REGISTRY: Dict[str, Type[ReproError]] = _collect_error_registry()


def is_retriable(error: "str | BaseException") -> bool:
    """The taxonomy bit for a wire error name or an exception instance.

    Unknown names are terminal: a client must not spin on an error it
    cannot classify.
    """
    if isinstance(error, BaseException):
        return bool(getattr(error, "retriable", False))
    cls = ERROR_REGISTRY.get(error)
    return bool(getattr(cls, "retriable", False)) if cls is not None else False


def decode_request(line: "str | bytes") -> Dict[str, Any]:
    """Parse one request line into a dictionary (:class:`BadRequest` on
    anything that is not a single JSON object)."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise BadRequest(f"request is not valid UTF-8: {exc}")
    if len(line) > MAX_REQUEST_BYTES:
        raise BadRequest(
            f"request line exceeds the {MAX_REQUEST_BYTES} byte limit"
        )
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise BadRequest(f"request is not valid JSON: {exc}")
    if not isinstance(payload, dict):
        raise BadRequest("request must be a JSON object")
    return payload


def encode_response(response: Dict[str, Any]) -> bytes:
    """Serialize one response dictionary to a single UTF-8 line."""
    return (json.dumps(response, separators=(",", ":")) + "\n").encode("utf-8")


def encode_error(exc: BaseException) -> Dict[str, Any]:
    """The in-band error shape: type name, message, and retriability."""
    return {
        "ok": False,
        "error": type(exc).__name__,
        "message": str(exc),
        "retriable": is_retriable(exc),
    }


def decode_error(payload: Dict[str, Any]) -> ReproError:
    """Reconstruct a typed exception from an in-band error response.

    The instance is rebuilt without running the subclass constructor
    (many carry structured arguments that do not survive the wire), so
    the round-trip contract is exactly: type preserved when the name is
    in the registry (:class:`ServiceError` otherwise), message preserved
    verbatim.
    """
    cls = ERROR_REGISTRY.get(str(payload.get("error")), ServiceError)
    exc = cls.__new__(cls)
    Exception.__init__(exc, str(payload.get("message", "")))
    return exc


def error_response(exc: BaseException) -> Dict[str, Any]:
    """Historical alias for :func:`encode_error`."""
    return encode_error(exc)


def bad_request_response(message: str) -> Dict[str, Any]:
    """The structured answer to an unparseable or oversized frame."""
    return encode_error(BadRequest(message))
