"""Newline-delimited JSON: the wire format of ``repro-dol serve``.

Two protocol versions share the one-JSON-object-per-line framing.

**Version 1** (the default every connection starts in): one request
per line, one response line per request, in order:

.. code-block:: text

    -> {"op": "ping"}
    <- {"ok": true, "pong": true}
    -> {"op": "query", "query": "//item/name", "subject": 3}
    <- {"ok": true, "positions": [...], "n_answers": 4, "epoch": 7, ...}
    -> {"op": "update", "kind": "subject_range", "start": 10, "end": 90,
        "subject": 3, "value": false}
    <- {"ok": true, "epoch": 8, "pages_rewritten": 2, ...}
    -> {"op": "metrics"}
    <- {"ok": true, "metrics": {...}}

Failures are in-band — ``{"ok": false, "error": "ServiceOverloaded",
"message": "..."}`` — so a shed or malformed request never drops the
connection. The format is trivially scriptable (``nc`` + ``jq``) and
keeps the server free of any framing beyond ``\\n``.

**Version 2** is negotiated with a ``hello`` request and multiplexes
many in-flight requests over one connection. Every request carries a
client-chosen ``id``; every response frame echoes it, so responses may
interleave in completion order. A plain request is answered with one
``reply`` frame; a streaming query is answered with a framed response
stream — ``begin``, zero or more ``fragment`` frames carrying one
disseminated answer each, and ``end`` with the run's statistics (or a
terminal ``error`` frame at any point):

.. code-block:: text

    -> {"op": "hello", "version": 2}
    <- {"ok": true, "version": 2}
    -> {"id": 7, "op": "query", "query": "//item", "subject": 3,
        "stream": true}
    <- {"id": 7, "frame": "begin", "epoch": 4, "strict": true}
    <- {"id": 7, "frame": "fragment", "seq": 0, "position": 12,
        "xml": "<item>...</item>"}
    <- {"id": 7, "frame": "end", "n_fragments": 1, "degraded": false,
        "epoch": 4, "stats": {...}}

Fragments hit the wire as the executor produces them, so a huge answer
is never buffered server-side; the ``seq`` counter lets a client resume
(re-issue and skip) after a mid-stream connection failure.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Type

from repro import errors as _errors
from repro.errors import BadRequest, ReproError, ServiceError

#: protect the line reader against garbage/abusive peers; servers and
#: services take this as a constructor parameter — the constant is only
#: the default, so deployments tune the cap without monkeypatching
MAX_REQUEST_BYTES = 1 << 20

#: protocol versions this build can speak
PROTOCOL_V1 = 1
PROTOCOL_V2 = 2
SUPPORTED_VERSIONS = (PROTOCOL_V1, PROTOCOL_V2)

#: v2 frame kinds
FRAME_REPLY = "reply"
FRAME_BEGIN = "begin"
FRAME_FRAGMENT = "fragment"
FRAME_END = "end"
FRAME_ERROR = "error"


def _collect_error_registry() -> Dict[str, Type[ReproError]]:
    """Every :class:`ReproError` subclass, by wire name.

    The hierarchy lives entirely in :mod:`repro.errors`, so module
    introspection finds the complete set; the transitive
    ``__subclasses__`` walk additionally picks up any subclass defined
    elsewhere that has been imported.
    """
    registry: Dict[str, Type[ReproError]] = {}
    seen = set()
    stack: list = [ReproError]
    for name in dir(_errors):
        obj = getattr(_errors, name)
        if isinstance(obj, type) and issubclass(obj, ReproError):
            stack.append(obj)
    while stack:
        cls = stack.pop()
        if cls in seen:
            continue
        seen.add(cls)
        registry[cls.__name__] = cls
        stack.extend(cls.__subclasses__())
    return registry


#: wire name -> exception class; the error taxonomy of the protocol
ERROR_REGISTRY: Dict[str, Type[ReproError]] = _collect_error_registry()


def is_retriable(error: "str | BaseException") -> bool:
    """The taxonomy bit for a wire error name or an exception instance.

    Unknown names are terminal: a client must not spin on an error it
    cannot classify.
    """
    if isinstance(error, BaseException):
        return bool(getattr(error, "retriable", False))
    cls = ERROR_REGISTRY.get(error)
    return bool(getattr(cls, "retriable", False)) if cls is not None else False


def decode_request(
    line: "str | bytes", max_bytes: Optional[int] = None
) -> Dict[str, Any]:
    """Parse one request line into a dictionary (:class:`BadRequest` on
    anything that is not a single JSON object).

    ``max_bytes`` overrides the module-default frame cap for this call
    (servers pass their configured cap through).
    """
    cap = MAX_REQUEST_BYTES if max_bytes is None else max_bytes
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise BadRequest(f"request is not valid UTF-8: {exc}")
    if len(line) > cap:
        raise BadRequest(f"request line exceeds the {cap} byte limit")
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise BadRequest(f"request is not valid JSON: {exc}")
    if not isinstance(payload, dict):
        raise BadRequest("request must be a JSON object")
    return payload


def encode_response(response: Dict[str, Any]) -> bytes:
    """Serialize one response dictionary to a single UTF-8 line."""
    return (json.dumps(response, separators=(",", ":")) + "\n").encode("utf-8")


def encode_error(exc: BaseException) -> Dict[str, Any]:
    """The in-band error shape: type name, message, and retriability."""
    return {
        "ok": False,
        "error": type(exc).__name__,
        "message": str(exc),
        "retriable": is_retriable(exc),
    }


def decode_error(payload: Dict[str, Any]) -> ReproError:
    """Reconstruct a typed exception from an in-band error response.

    The instance is rebuilt without running the subclass constructor
    (many carry structured arguments that do not survive the wire), so
    the round-trip contract is exactly: type preserved when the name is
    in the registry (:class:`ServiceError` otherwise), message preserved
    verbatim.
    """
    cls = ERROR_REGISTRY.get(str(payload.get("error")), ServiceError)
    exc = cls.__new__(cls)
    Exception.__init__(exc, str(payload.get("message", "")))
    return exc


def error_response(exc: BaseException) -> Dict[str, Any]:
    """Historical alias for :func:`encode_error`."""
    return encode_error(exc)


def bad_request_response(message: str) -> Dict[str, Any]:
    """The structured answer to an unparseable or oversized frame."""
    return encode_error(BadRequest(message))


# -- protocol v2: negotiation and the framed response stream -----------------


def negotiate_version(request: Dict[str, Any]) -> int:
    """Resolve a ``hello`` request to the version the connection speaks.

    The client names the highest version it understands; the server
    answers with ``min(requested, newest supported)``. A request without
    a usable ``version`` field is a v1 client probing — it gets v1.
    Raises :class:`BadRequest` for versions older than anything we speak.
    """
    requested = request.get("version", PROTOCOL_V1)
    if not isinstance(requested, int) or isinstance(requested, bool):
        raise BadRequest(f"hello version must be an integer, got {requested!r}")
    if requested < PROTOCOL_V1:
        raise BadRequest(f"unsupported protocol version {requested}")
    return min(requested, PROTOCOL_V2)


def hello_response(version: int) -> Dict[str, Any]:
    """The answer to a ``hello``: the version this connection now speaks."""
    return {"ok": True, "version": version}


def request_id(request: Dict[str, Any]) -> Any:
    """Extract and validate a v2 request's ``id`` (:class:`BadRequest`
    when missing or not a JSON scalar)."""
    rid = request.get("id")
    if rid is None or isinstance(rid, (dict, list)):
        raise BadRequest("protocol v2 requests need a scalar 'id'")
    return rid


def reply_frame(rid: Any, body: Dict[str, Any]) -> Dict[str, Any]:
    """Wrap a v1-shaped response body as one v2 ``reply`` frame."""
    return {"id": rid, "frame": FRAME_REPLY, **body}


def begin_frame(rid: Any, epoch: int, strict: bool) -> Dict[str, Any]:
    """The stream opener: the epoch the whole stream reads, and whether
    evaluation is running strict (``false`` announces a degraded run)."""
    return {"id": rid, "frame": FRAME_BEGIN, "epoch": epoch, "strict": strict}


def fragment_frame(rid: Any, seq: int, position: int, xml: str) -> Dict[str, Any]:
    """One disseminated answer: its document position and XML fragment.

    ``seq`` numbers fragments from 0 so a client that lost its
    connection mid-stream can re-issue the query and skip what it
    already delivered.
    """
    return {
        "id": rid,
        "frame": FRAME_FRAGMENT,
        "seq": seq,
        "position": position,
        "xml": xml,
    }


def end_frame(rid: Any, body: Dict[str, Any]) -> Dict[str, Any]:
    """The stream closer: fragment count, degraded flag, and stats."""
    return {"id": rid, "frame": FRAME_END, **body}


def error_frame(rid: Any, exc: BaseException) -> Dict[str, Any]:
    """A terminal typed error frame — the v2 shape of :func:`encode_error`.

    Ends the request it names (mid-stream too: a stream that errors
    after ``begin`` emits this instead of ``end``).
    """
    return {"id": rid, "frame": FRAME_ERROR, **encode_error(exc)}
