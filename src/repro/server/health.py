"""Health state, corruption circuit breaker, and brownout tiers.

The serving layer's self-healing story in one place:

- :class:`CircuitBreaker` — per-store protection against repeated
  :class:`~repro.errors.PageCorruptionError`. Closed: requests run
  strict, and Proposition 1 holds exactly. After ``corruption_trip``
  corruption events inside ``window_s`` the breaker opens: requests run
  degraded (``strict=False`` — corrupt pages are quarantined and
  skipped, so answers are *subsets* of the accessible nodes, flagged
  ``degraded: true`` on the wire; an inaccessible node is never
  returned). ``probe_interval_s`` after the last corruption event the
  breaker half-opens: the next request clears the quarantine and runs
  strict as the probe — success closes the breaker (transient bit rot
  heals), corruption re-opens it (rotten disk stays degraded).

- :class:`HealthModel` — folds the breaker, the store's quarantine
  count, the WAL-recovery result stamped at open, and a sliding window
  of request outcomes into one of three states: ``healthy`` (strict
  serving, nothing quarantined), ``degraded`` (the breaker is open or
  half-open, pages are quarantined, the store came up through WAL
  recovery and has not yet passed a strict request, or brownout is
  shedding cache opt-ins), ``unavailable`` (essentially no request is
  succeeding). State is recomputed on read — there is no background
  thread to leak.

- Brownout tiers, computed from the admission gauge: tier 0 serves with
  every cache opt-in honored; tier 1 (admission ≥ ``brownout_ratio`` of
  the limit, or the breaker not closed) sheds the ResultCache opt-in;
  tier 2 (≥ midway between ``brownout_ratio`` and full) also sheds the
  shared RunCache; tier 3 is the existing admission shed — load
  degrades answer *cost* before it degrades *availability*.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from time import monotonic
from typing import Callable, Dict, Optional

HEALTHY = "healthy"
DEGRADED = "degraded"
UNAVAILABLE = "unavailable"

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


@dataclass
class HealthConfig:
    """Thresholds of the health state machine."""

    #: corruption events within ``window_s`` that trip the breaker
    corruption_trip: int = 3
    #: sliding window for corruption events and error rates (seconds)
    window_s: float = 30.0
    #: open -> half-open this long after the last corruption event; also
    #: the cadence at which a degraded service re-probes strictness
    probe_interval_s: float = 0.25
    #: fraction of recent requests failing that flips state to unavailable
    error_rate_unavailable: float = 0.95
    #: minimum recent outcomes before the error rate is trusted
    min_samples: int = 8
    #: recent request outcomes retained for the error-rate window
    outcome_window: int = 64
    #: admission-gauge fraction where brownout tier 1 begins
    brownout_ratio: float = 0.75


class CircuitBreaker:
    """Trip on repeated page corruption; heal through strict probes."""

    def __init__(self, config: HealthConfig):
        self.config = config
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._events: deque = deque()  # corruption timestamps
        self._last_corruption = 0.0
        self.trips = 0
        self.corruption_events = 0
        self.probes = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def record_corruption(self, count: int = 1, now: Optional[float] = None) -> bool:
        """Account ``count`` corruption events; returns True if tripped.

        In half-open state any corruption is the probe failing — the
        breaker re-opens immediately rather than re-counting to the
        threshold.
        """
        now = monotonic() if now is None else now
        with self._lock:
            self.corruption_events += count
            self._last_corruption = now
            if self._state == BREAKER_HALF_OPEN:
                self._state = BREAKER_OPEN
                return True
            for _ in range(count):
                self._events.append(now)
            self._expire(now)
            if (
                self._state == BREAKER_CLOSED
                and len(self._events) >= self.config.corruption_trip
            ):
                self._state = BREAKER_OPEN
                self.trips += 1
                return True
            return self._state == BREAKER_OPEN

    def allow_strict(self, now: Optional[float] = None) -> bool:
        """May the next request run strict?

        Closed: yes. Open: only once ``probe_interval_s`` has passed
        since the last corruption — that request becomes the half-open
        probe. Half-open: no (one probe at a time keeps the blast radius
        of a rotten page at a single request per interval).
        """
        now = monotonic() if now is None else now
        with self._lock:
            if self._state == BREAKER_CLOSED:
                return True
            if self._state == BREAKER_OPEN and (
                now - self._last_corruption >= self.config.probe_interval_s
            ):
                self._state = BREAKER_HALF_OPEN
                self.probes += 1
                return True
            return False

    def record_probe_success(self) -> None:
        """The half-open strict probe completed without corruption."""
        with self._lock:
            if self._state == BREAKER_HALF_OPEN:
                self._state = BREAKER_CLOSED
                self._events.clear()

    def _expire(self, now: float) -> None:
        horizon = now - self.config.window_s
        while self._events and self._events[0] < horizon:
            self._events.popleft()

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "state": self._state,
                "trips": self.trips,
                "probes": self.probes,
                "corruption_events": self.corruption_events,
                "recent_events": len(self._events),
            }


class HealthModel:
    """The service's health state, recomputed from its inputs on read."""

    def __init__(
        self,
        config: Optional[HealthConfig] = None,
        quarantine_count: Optional[Callable[[], int]] = None,
        recovery: Optional[Dict[str, object]] = None,
    ):
        self.config = config or HealthConfig()
        self.breaker = CircuitBreaker(self.config)
        self._quarantine_count = quarantine_count or (lambda: 0)
        self.recovery = recovery
        self._lock = threading.Lock()
        #: (timestamp, ok) for the last ``outcome_window`` requests
        self._outcomes: deque = deque(maxlen=self.config.outcome_window)
        #: a store that came up through WAL recovery serves degraded
        #: until one strict request completes — recovery replayed the
        #: log correctly by construction, but the flag makes the reopen
        #: observable until the store proves itself end to end
        self._recovery_unprobed = bool(recovery and recovery.get("acted"))

    # -- inputs ------------------------------------------------------------

    def record_outcome(self, ok: bool) -> None:
        with self._lock:
            self._outcomes.append((monotonic(), ok))

    def record_strict_success(self) -> None:
        """A strict request completed: recovery is considered probed."""
        with self._lock:
            self._recovery_unprobed = False

    def record_corruption(self, count: int = 1) -> bool:
        """Feed corruption into the breaker; returns True if open."""
        return self.breaker.record_corruption(count)

    # -- state -------------------------------------------------------------

    def _error_rate(self, now: float) -> "tuple[float, int]":
        horizon = now - self.config.window_s
        with self._lock:
            recent = [ok for (ts, ok) in self._outcomes if ts >= horizon]
        if not recent:
            return 0.0, 0
        failures = sum(1 for ok in recent if not ok)
        return failures / len(recent), len(recent)

    def brownout_tier(self, inflight: int, limit: int) -> int:
        """0 = full service, 1 = shed ResultCache, 2 = + shed RunCache.

        The breaker being anything but closed forces at least tier 1: a
        possibly-corrupt store must not populate shared caches.
        """
        tier = 0
        if limit > 0:
            ratio = inflight / limit
            threshold = self.config.brownout_ratio
            if ratio >= threshold + (1.0 - threshold) / 2.0:
                tier = 2
            elif ratio >= threshold:
                tier = 1
        if tier == 0 and self.breaker.state != BREAKER_CLOSED:
            tier = 1
        return tier

    def state(self, inflight: int = 0, limit: int = 0) -> str:
        now = monotonic()
        rate, samples = self._error_rate(now)
        if (
            samples >= self.config.min_samples
            and rate >= self.config.error_rate_unavailable
        ):
            return UNAVAILABLE
        with self._lock:
            recovery_unprobed = self._recovery_unprobed
        if (
            self.breaker.state != BREAKER_CLOSED
            or self._quarantine_count() > 0
            or recovery_unprobed
            or self.brownout_tier(inflight, limit) > 0
        ):
            return DEGRADED
        return HEALTHY

    def report(self, inflight: int = 0, limit: int = 0) -> Dict[str, object]:
        """The ``health`` wire payload."""
        now = monotonic()
        rate, samples = self._error_rate(now)
        return {
            "state": self.state(inflight, limit),
            "breaker": self.breaker.snapshot(),
            "quarantined_pages": self._quarantine_count(),
            "brownout_tier": self.brownout_tier(inflight, limit),
            "error_rate": round(rate, 4),
            "error_samples": samples,
            "wal_recovery": self.recovery,
            "probe_interval_s": self.config.probe_interval_s,
        }
