"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing parse errors from storage errors, and so on.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class XMLParseError(ReproError):
    """Raised when an XML document cannot be parsed.

    Carries the byte/character ``position`` in the input where the error
    was detected, when known.
    """

    def __init__(self, message: str, position: int = -1):
        if position >= 0:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class TreeError(ReproError):
    """Raised on invalid document-tree operations (bad node ids, cycles)."""


class QueryParseError(ReproError):
    """Raised when a twig-query string cannot be parsed."""


class AccessControlError(ReproError):
    """Raised on invalid access control specifications or lookups."""


class UnknownSubjectError(AccessControlError):
    """Raised when a subject id is not registered with the matrix."""


class CodebookError(ReproError):
    """Raised on codebook misuse (unknown code, capacity exceeded)."""


class StorageError(ReproError):
    """Raised on page/buffer-pool failures (bad page id, page overflow)."""


class PageFormatError(StorageError):
    """Raised when a page's on-disk bytes fail validation."""


class PageCorruptionError(PageFormatError):
    """Raised when a page fails checksum verification.

    Carries the ``page_id`` and, when the failure came from a CRC
    mismatch, the ``expected`` (stored) and ``actual`` (recomputed)
    digests so fsck output and logs can show exactly what was read.
    """

    def __init__(
        self,
        page_id: int,
        expected: "int | None" = None,
        actual: "int | None" = None,
        detail: str = "",
    ):
        message = f"page {page_id} failed verification"
        if expected is not None and actual is not None:
            message += f": checksum expected {expected:#010x}, got {actual:#010x}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)
        self.page_id = page_id
        self.expected = expected
        self.actual = actual


class WALError(StorageError):
    """Raised on write-ahead-log misuse or an unrecoverable log file."""


class IndexError_(ReproError):
    """Raised on B+-tree structural violations.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class UpdateError(ReproError):
    """Raised when a DOL update operation is invalid (bad target, etc.)."""


class ServiceError(ReproError):
    """Raised on query-service failures (the concurrent serving layer)."""


class ServiceOverloaded(ServiceError):
    """Raised when the service sheds a request: every worker is busy and
    the admission queue is at its depth limit. Carries the limit so
    clients can log/back off meaningfully."""

    def __init__(self, inflight: int, limit: int):
        super().__init__(
            f"service overloaded: {inflight} requests in flight "
            f"(admission limit {limit})"
        )
        self.inflight = inflight
        self.limit = limit


class ServiceTimeout(ServiceError):
    """Raised when a request exceeds the service's per-request timeout."""

    def __init__(self, seconds: float):
        super().__init__(f"request exceeded the {seconds:g}s timeout")
        self.seconds = seconds
