"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing parse errors from storage errors, and so on.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library.

    ``retriable`` is the wire-level taxonomy bit: ``True`` marks
    transient failures a client may retry (overload, a tripped
    dependency, a dropped connection); ``False`` marks terminal ones
    (malformed queries, exhausted deadlines) where a retry would only
    repeat the failure. Subclasses override the class attribute.
    """

    retriable = False


class XMLParseError(ReproError):
    """Raised when an XML document cannot be parsed.

    Carries the byte/character ``position`` in the input where the error
    was detected, when known.
    """

    def __init__(self, message: str, position: int = -1):
        if position >= 0:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class TreeError(ReproError):
    """Raised on invalid document-tree operations (bad node ids, cycles)."""


class QueryParseError(ReproError):
    """Raised when a twig-query string cannot be parsed."""


class AccessControlError(ReproError):
    """Raised on invalid access control specifications or lookups."""


class UnknownSubjectError(AccessControlError):
    """Raised when a subject id is not registered with the matrix."""


class CodebookError(ReproError):
    """Raised on codebook misuse (unknown code, capacity exceeded)."""


class StorageError(ReproError):
    """Raised on page/buffer-pool failures (bad page id, page overflow)."""


class PageFormatError(StorageError):
    """Raised when a page's on-disk bytes fail validation."""


class PageCorruptionError(PageFormatError):
    """Raised when a page fails checksum verification.

    Carries the ``page_id`` and, when the failure came from a CRC
    mismatch, the ``expected`` (stored) and ``actual`` (recomputed)
    digests so fsck output and logs can show exactly what was read.
    """

    #: a fresh read may succeed (transient bit rot is quarantined and the
    #: service degrades around it), so clients may retry
    retriable = True

    def __init__(
        self,
        page_id: int,
        expected: "int | None" = None,
        actual: "int | None" = None,
        detail: str = "",
    ):
        message = f"page {page_id} failed verification"
        if expected is not None and actual is not None:
            message += f": checksum expected {expected:#010x}, got {actual:#010x}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)
        self.page_id = page_id
        self.expected = expected
        self.actual = actual


class WALError(StorageError):
    """Raised on write-ahead-log misuse or an unrecoverable log file."""


class IndexError_(ReproError):
    """Raised on B+-tree structural violations.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class UpdateError(ReproError):
    """Raised when a DOL update operation is invalid (bad target, etc.)."""


class ServiceError(ReproError):
    """Raised on query-service failures (the concurrent serving layer)."""


class BadRequest(ServiceError):
    """Raised on a malformed wire request: not JSON, not an object, an
    oversized frame, or arguments of the wrong shape. Terminal — the
    same bytes will fail the same way."""


class ServiceOverloaded(ServiceError):
    """Raised when the service sheds a request: every worker is busy and
    the admission queue is at its depth limit. Carries the limit so
    clients can log/back off meaningfully."""

    retriable = True

    def __init__(self, inflight: int, limit: int):
        super().__init__(
            f"service overloaded: {inflight} requests in flight "
            f"(admission limit {limit})"
        )
        self.inflight = inflight
        self.limit = limit


class ServiceTimeout(ServiceError):
    """Raised when a request exceeds the service's per-request timeout.

    Terminal by taxonomy: the deadline is spent — retrying against the
    same deadline can only time out again. ``waited`` carries the queue
    wait when the deadline was burned before the request ever ran.
    """

    def __init__(self, seconds: "float | None", waited: "float | None" = None):
        message = (
            f"request exceeded the {seconds:g}s timeout"
            if seconds is not None
            else "request exceeded its timeout"
        )
        if waited is not None:
            message += f" ({waited:.3f}s of it waiting for a worker)"
        super().__init__(message)
        self.seconds = seconds
        self.waited = waited


class ServiceUnavailable(ServiceError):
    """Raised when the service is temporarily unable to serve — snapshot
    acquisition failed, the store is mid-recovery, or chaos injection
    simulated either. Retriable: the condition is expected to clear."""

    retriable = True

    def __init__(self, reason: str = "service temporarily unavailable"):
        super().__init__(reason)


class ClientError(ReproError):
    """Base class for failures raised by the resilient client itself
    (as opposed to errors decoded off the wire)."""


class ConnectionFailed(ClientError):
    """Raised when the transport failed mid-request: connect refused,
    connection reset, the server closed the stream, or a torn/garbled
    response frame. Retriable after a reconnect — but only for
    idempotent requests when ``request_sent`` is True, since a request
    that reached the wire may have executed server-side."""

    retriable = True

    def __init__(self, message: str, request_sent: bool = False):
        super().__init__(message)
        self.request_sent = request_sent


class RetryBudgetExhausted(ClientError):
    """Raised when the client gives up retrying: the attempt cap or the
    retry budget ran out. Terminal; chains the last underlying error."""

    def __init__(self, budget: "float | None" = None):
        message = "retry budget exhausted"
        if budget is not None:
            message += f" (budget {budget:g})"
        super().__init__(message)
        self.budget = budget
