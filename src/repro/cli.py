"""Command-line interface: ``repro-dol``.

Subcommands
-----------

``xmark``
    Generate an XMark-like document to a file (or stdout).
``inspect``
    Parse an XML file and print structural statistics.
``label``
    Attach synthetic access controls, build every labeling backend (DOL,
    CAM, naive), and print their sizes side by side.
``build``
    Build a page store from an XML file with a chosen labeling backend
    (``--labeling {dol,cam,naive}``) and save it to disk.
``query``
    Evaluate a twig query against an XML file, optionally securely and
    with a chosen labeling backend.
``explain``
    Print the NoK evaluation plan for a twig query.
``disseminate``
    Filter an XML file for one subject (one-pass secure dissemination).
``verify-store``
    Offline fsck of a saved page store: checksums, catalog agreement,
    header/entry agreement, WAL state. Exits non-zero on any finding;
    ``--json`` emits the machine-readable report.
``health``
    Probe a running server's self-reported health over the wire; the
    exit code (0/1/2 = healthy/degraded/unavailable) is scriptable.
``bench``
    Run a benchmark suite. ``--suite exec`` (default) times batch vs
    tuple execution, writes ``BENCH_exec.json``, and optionally gates
    against a committed baseline; ``--suite classes`` measures cache
    growth against simulated user populations (``--users``), writes
    ``BENCH_classes.json``, and gates that every cache layer's entry
    count is bounded by the number of access classes, not users;
    ``--suite kernels`` runs the array-kernel micros (run intersection,
    columnar page decode, leaf NPM) under the active backend, writes
    ``BENCH_kernels.json``, and gates on machine-independent ratios.
``serve``
    Serve secure queries and accessibility updates concurrently over a
    newline-delimited JSON TCP protocol (bounded worker pool, snapshot
    isolation, request shedding under overload, self-healing around
    storage corruption). ``--chaos-seed`` turns on seeded fault
    injection at every layer for resilience drills.
"""

from __future__ import annotations

import argparse
import sys
import threading
from pathlib import Path
from typing import List, Optional

from repro.acl.synthetic import SyntheticACLConfig, generate_synthetic_acl
from repro.bench.reporting import format_table
from repro.labeling.classes import ClassDirectory, normalize_subjects
from repro.labeling.registry import (
    DEFAULT_BACKEND,
    available_backends,
    build_labeling,
)
from repro.nok.engine import QueryEngine
from repro.secure.semantics import CHO, SEMANTICS
from repro.xmark.generator import XMarkConfig, generate
from repro.xmltree.document import Document
from repro.xmltree.parser import parse
from repro.xmltree.serializer import serialize


def _load_document(path: str) -> Document:
    with open(path, "r", encoding="utf-8") as handle:
        return Document.from_tree(parse(handle.read()))


def _parse_subject(text: Optional[str]):
    """``--subject`` value: one id, or a comma-separated set (``0,3,7``).

    Routed through the engine-shared :func:`normalize_subjects`, so the
    CLI, the service, and the engine agree on one canonical form —
    duplicates and ordering cannot produce distinct cache entries.
    """
    if text is None:
        return None
    try:
        ids = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        ids = []
    if not ids:
        raise argparse.ArgumentTypeError(
            f"--subject takes an id or comma-separated ids, got {text!r}"
        )
    subjects = normalize_subjects(ids)
    return subjects[0] if len(subjects) == 1 else subjects


def _cmd_xmark(args: argparse.Namespace) -> int:
    config = XMarkConfig(n_items=args.items, seed=args.seed)
    text = serialize(generate(config), indent=2 if args.pretty else 0)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text + "\n")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    doc = _load_document(args.file)
    tag_counts: dict = {}
    for pos in range(len(doc)):
        name = doc.tag_name(pos)
        tag_counts[name] = tag_counts.get(name, 0) + 1
    rows = sorted(tag_counts.items(), key=lambda kv: -kv[1])[:20]
    print(f"nodes: {len(doc)}")
    print(f"max depth: {max(doc.depth)}")
    print(f"distinct tags: {len(tag_counts)}")
    print(format_table("top tags", ["tag", "count"], rows))
    return 0


def _cmd_label(args: argparse.Namespace) -> int:
    doc = _load_document(args.file)
    config = SyntheticACLConfig(
        propagation_ratio=args.propagation,
        accessibility_ratio=args.accessibility,
        seed=args.seed,
    )
    matrix = generate_synthetic_acl(doc, config, n_subjects=args.subjects)
    wanted = (
        available_backends() if args.labeling == "all" else (args.labeling,)
    )
    backends = {name: build_labeling(name, doc, matrix) for name in wanted}
    rows = [
        ("document nodes", len(doc)),
        ("subjects", args.subjects),
    ]
    dol = backends.get("dol")
    if dol is not None:
        rows += [
            ("DOL transition nodes", dol.n_labels),
            ("DOL codebook entries", len(dol.codebook)),
            ("DOL total bytes", dol.size_bytes()),
        ]
    cam = backends.get("cam")
    if cam is not None:
        rows += [
            ("CAM labels (all subjects)", cam.n_labels),
            ("CAM total bytes", cam.size_bytes()),
        ]
    naive = backends.get("naive")
    if naive is not None:
        rows += [
            ("naive labels (one per node)", naive.n_labels),
            ("naive total bytes", naive.size_bytes()),
        ]
    print(format_table("labeling backends", ["metric", "value"], rows))
    if args.classes:
        class_rows = []
        for name, labeling in sorted(backends.items()):
            directory = ClassDirectory()
            epoch_key = ("cli", name, labeling.runs_epoch)
            singles = {
                directory.class_of(labeling, epoch_key, (s,))
                for s in range(args.subjects)
            }
            pairs = {
                directory.class_of(labeling, epoch_key, (a, b))
                for a in range(args.subjects)
                for b in range(a + 1, args.subjects)
            }
            class_rows += [
                (f"{name} distinct ACLs (atoms)", len(set(matrix.masks()))),
                (f"{name} single-subject classes", len(singles)),
                (f"{name} subject-pair classes", len(pairs)),
            ]
        print(
            format_table(
                "access classes (equal class = identical accessibility)",
                ["metric", "value"],
                class_rows,
            )
        )
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    import os

    from repro.storage.nokstore import NoKStore
    from repro.storage.persist import save_store

    doc = _load_document(args.file)
    config = SyntheticACLConfig(
        propagation_ratio=args.propagation,
        accessibility_ratio=args.accessibility,
        seed=args.seed,
    )
    matrix = generate_synthetic_acl(doc, config, n_subjects=args.subjects)
    labeling = build_labeling(args.labeling, doc, matrix)
    with NoKStore(
        doc, labeling, path=args.store, page_size=args.page_size,
        codec=args.codec,
    ) as store:
        catalog = save_store(store)
        print(
            f"built {args.labeling} store: {store.n_nodes} nodes on "
            f"{store.n_pages} pages ({store.entries_per_page}/page, "
            f"codec {args.codec}), {labeling.n_labels} labels "
            f"({labeling.size_bytes()} bytes)"
        )
        print(
            f"wrote {args.store} ({os.path.getsize(args.store)} bytes) "
            f"+ {catalog}"
        )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    doc = _load_document(args.file)
    if args.subject is not None:
        config = SyntheticACLConfig(
            accessibility_ratio=args.accessibility, seed=args.seed
        )
        n_subjects = max(normalize_subjects(args.subject)) + 1
        matrix = generate_synthetic_acl(config=config, doc=doc, n_subjects=n_subjects)
        engine = QueryEngine.build(
            doc, matrix, labeling=args.labeling, exec_mode=args.exec_mode
        )
    else:
        engine = QueryEngine.build(doc, exec_mode=args.exec_mode)

    if args.explain:
        plan = engine.compile(
            args.query, subject=args.subject, semantics=args.semantics
        )
        print("physical plan:")
        print(plan.explain())
        return 0

    if args.explain_analyze:
        result, plan_text = engine.explain_analyze(
            args.query, subject=args.subject, semantics=args.semantics
        )
        print("physical plan (analyzed):")
        print(plan_text)
        print(
            f"answers: {result.n_answers}  bindings: {result.n_bindings}  "
            f"access checks: {result.stats.access_checks}  "
            f"kernels: {result.stats.kernel_backend}  "
            f"wall time: {result.stats.wall_time * 1000.0:.3f}ms"
        )
        return 0

    result = engine.evaluate(
        args.query, subject=args.subject, semantics=args.semantics
    )
    print(f"answers: {result.n_answers}")
    for pos in result.positions[: args.limit]:
        print(f"  {pos}: <{doc.tag_name(pos)}> {doc.text(pos)[:60]}")
    if result.n_answers > args.limit:
        print(f"  ... and {result.n_answers - args.limit} more")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    doc = _load_document(args.file)
    engine = QueryEngine.build(doc)
    if args.analyze:
        result, plan_text = engine.explain_analyze(args.query)
        print(engine.explain(args.query))
        print("physical plan (analyzed):")
        print(plan_text)
        print(f"answers: {result.n_answers}")
    else:
        print(engine.explain(args.query))
    return 0


def _cmd_disseminate(args: argparse.Namespace) -> int:
    from repro.secure.dissemination import filter_xml

    doc = _load_document(args.file)
    config = SyntheticACLConfig(
        accessibility_ratio=args.accessibility, seed=args.seed
    )
    matrix = generate_synthetic_acl(doc, config, n_subjects=args.subject + 1)
    labeling = build_labeling(args.labeling, doc, matrix)
    with open(args.file, "r", encoding="utf-8") as handle:
        xml_text = handle.read()
    out = filter_xml(xml_text, labeling, args.subject, args.policy)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(out)
        print(f"wrote {len(out)} bytes to {args.output}")
    else:
        sys.stdout.write(out + "\n")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server.chaos import default_chaos
    from repro.server.service import QueryService, ServiceConfig

    doc = _load_document(args.file)
    config = SyntheticACLConfig(
        propagation_ratio=args.propagation,
        accessibility_ratio=args.accessibility,
        seed=args.seed,
    )
    matrix = generate_synthetic_acl(doc, config, n_subjects=args.subjects)
    engine = QueryEngine.build(
        doc, matrix, use_store=True, labeling=args.labeling
    )
    chaos = None
    if args.chaos_seed is not None:
        chaos = default_chaos(args.chaos_seed)
    service_config = ServiceConfig(
        workers=args.workers,
        queue_depth=args.queue_depth,
        timeout=args.timeout if args.timeout > 0 else None,
    )
    if args.max_request_bytes is not None:
        service_config.max_request_bytes = args.max_request_bytes
    service = QueryService(engine, service_config, chaos=chaos)
    print(
        f"serving {args.file} ({len(doc)} nodes, {args.subjects} subjects, "
        f"{args.labeling} labeling) on {args.host}:{args.port} "
        f"with {args.workers} workers ({args.server} server)"
    )
    if chaos is not None:
        print(
            f"CHAOS MODE: injecting seeded faults at every layer "
            f"(seed {args.chaos_seed}) — do not point real clients here"
        )
    if args.server == "async":
        from repro.server.aserver import serve_async

        # The facade's context manager owns the full teardown chain:
        # listeners, loop thread, service pool, store.
        with serve_async(
            service,
            host=args.host,
            port=args.port,
            chaos=chaos,
            http_port=args.http_port,
        ) as running:
            if running.http_address is not None:
                print(
                    f"http front end on "
                    f"{running.http_address[0]}:{running.http_address[1]}"
                )
            try:
                threading.Event().wait()
            except KeyboardInterrupt:  # pragma: no cover - interactive only
                pass
        return 0
    if args.http_port is not None:
        print("--http-port requires --server async", file=sys.stderr)
        return 2
    from repro.server.netserver import serve

    # serve() owns the teardown chain in its finally block
    serve(service, host=args.host, port=args.port, chaos=chaos)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json as _json

    from repro.acl.surrogates import generate_livelink
    from repro.bench.loadgen import gate_serving_report, run_serving_benchmark
    from repro.labeling.registry import build_labeling
    from repro.server.aserver import serve_async
    from repro.server.netserver import serve
    from repro.server.service import QueryService, ServiceConfig
    from repro.storage.nokstore import NoKStore

    dataset = generate_livelink(
        n_items=args.items,
        n_groups=args.groups,
        n_users=0,
        seed=args.seed,
    )
    built = build_labeling(args.labeling, dataset.doc, dataset.matrix, "add_items")
    store = NoKStore(dataset.doc, built, page_size=4096)
    engine = QueryEngine(dataset.doc, labeling=built, store=store)
    config = ServiceConfig(workers=args.workers, queue_depth=args.queue_depth)
    v1_service = QueryService(engine, config)
    v2_service = QueryService(engine, config)
    v1_server = serve(v1_service, host="127.0.0.1", port=0, background=True)
    try:
        with serve_async(v2_service, host="127.0.0.1", port=0) as v2_server:
            print(
                f"loadgen: {args.items} items, {args.users} users over "
                f"{args.groups} groups, {args.requests} requests/profile "
                f"at {args.rate} req/s"
            )
            report = run_serving_benchmark(
                v1_server.address,
                v2_server.address,
                n_users=args.users,
                n_groups=args.groups,
                connections=tuple(args.connections),
                requests=args.requests,
                arrival_rate_hz=args.rate,
                seed=args.seed,
            )
    finally:
        v1_server.shutdown()
        v1_server.server_close()
        v1_service.close()
        # v2_server's context manager closed v2_service and the store

    out = Path(args.out)
    out.write_text(_json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    for entry in report["profiles"]:
        stream = " stream" if entry["stream"] else ""
        latency = entry["latency"]
        print(
            f"  v{entry['protocol']}{stream} conns={entry['connections']}: "
            f"{entry['throughput_rps']} req/s, "
            f"p50={latency.get('p50_ms', 0):.1f}ms "
            f"p99={latency.get('p99_ms', 0):.1f}ms, "
            f"{entry['completed']}/{entry['requests']} ok"
        )
    largest = report["largest_query"]
    print(
        f"  largest query: ttff={largest['ttff_ms']}ms "
        f"full={largest['full_ms']}ms"
    )
    if args.gate:
        problems = gate_serving_report(report)
        if problems:
            for problem in problems:
                print(f"GATE FAIL: {problem}", file=sys.stderr)
            return 1
        print("serving gates passed")
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    """Exit 0 healthy, 1 degraded, 2 unavailable or unreachable."""
    import json

    from repro.errors import ReproError
    from repro.server.client import ResilientClient, RetryPolicy

    policy = RetryPolicy(max_attempts=3, deadline_s=args.timeout)
    try:
        with ResilientClient(args.host, args.port, policy=policy) as client:
            report = client.health(deadline_s=args.timeout)
    except ReproError as exc:
        print(
            json.dumps({"state": "unavailable", "error": str(exc)}, indent=2)
            if args.json
            else f"{args.host}:{args.port}: unreachable ({exc})"
        )
        return 2
    if args.json:
        print(json.dumps(report, indent=2, default=str))
    else:
        breaker = report.get("breaker", {})
        print(
            f"{args.host}:{args.port}: {report['state']} "
            f"(breaker {breaker.get('state')}, "
            f"quarantined {report.get('quarantined_pages')}, "
            f"brownout tier {report.get('brownout_tier')})"
        )
    return {"healthy": 0, "degraded": 1}.get(report.get("state"), 2)


def _cmd_verify_store(args: argparse.Namespace) -> int:
    import json

    from repro.storage.persist import fsck_report

    report = fsck_report(args.store, catalog_path=args.catalog)
    if args.json:
        print(json.dumps(report, indent=2, default=str))
        return 0 if report["clean"] else 1
    codec = report.get("codec")
    codec_text = (
        f"structure={codec['structure']} codes={codec['codes']}"
        if codec else "none (plain v2)"
    )
    print(f"{args.store}: codec {codec_text}")
    print(
        f"{args.store}: {report['n_pages']} pages, "
        f"{report['physical_bytes']} physical bytes, "
        f"{report['logical_bytes']} logical bytes"
    )
    for name, totals in sorted(report.get("containers", {}).items()):
        used = ",".join(totals["codecs"]) or "-"
        print(
            f"{args.store}:   {name}: {totals['physical_bytes']} physical / "
            f"{totals['logical_bytes']} logical bytes (codecs: {used})"
        )
    if report["clean"]:
        print(f"{args.store}: clean")
        return 0
    for finding in report["findings"]:
        print(f"{args.store}: {finding['message']}")
    print(f"{len(report['findings'])} problem(s) found")
    return 1


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.bench.exec import (
        diff_reports,
        gate_storage_report,
        run_exec_benchmark,
        run_storage_benchmark,
        write_report,
    )

    if args.suite == "classes":
        return _cmd_bench_classes(args)
    if args.suite == "kernels":
        return _cmd_bench_kernels(args)
    report = run_exec_benchmark(
        sizes=tuple(args.sizes), repeats=args.repeats,
        semantics=args.semantics,
    )
    storage_violations = []
    if args.storage_codec != "none":
        report["storage"] = run_storage_benchmark(
            n_items=max(args.sizes), codec=args.storage_codec,
            repeats=args.repeats, semantics=args.semantics,
        )
        storage_violations = gate_storage_report(report["storage"])
    write_report(report, args.output)
    print(f"wrote {args.output}")
    for size in sorted(report["sizes"], key=int):
        entry = report["sizes"][size]
        print(
            f"  n_items={size}: tuple {entry['tuple_total_ms']:.2f}ms, "
            f"batch {entry['batch_total_ms']:.2f}ms "
            f"({entry['speedup_overall']:.2f}x)"
        )
    if "storage" in report:
        storage = report["storage"]
        plain = storage["variants"]["plain"]
        compressed = storage["variants"]["compressed"]
        print(
            f"  storage codec {storage['codec']}: "
            f"{compressed['store_bytes']} vs {plain['store_bytes']} bytes "
            f"({storage['bytes_ratio']:.2f}x), batch latency "
            f"{storage['latency_ratio']:.2f}x plain"
        )
        for line in storage_violations:
            print(f"VIOLATION: {line}")
        if storage_violations:
            return 1
        print("storage-codec gate: >=25% smaller on disk, latency within 10%")
    if args.baseline is None:
        return 0
    with open(args.baseline, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    regressions = diff_reports(baseline, report, threshold=args.threshold)
    if regressions:
        for line in regressions:
            print(f"REGRESSION: {line}")
        return 1
    print(f"no regressions against {args.baseline} (threshold {args.threshold:.0%})")
    return 0


def _cmd_bench_kernels(args: argparse.Namespace) -> int:
    from repro.bench.kernels import (
        gate_kernels_report,
        run_kernels_benchmark,
        write_report,
    )

    output = (
        args.output if args.output != "BENCH_exec.json" else "BENCH_kernels.json"
    )
    report = run_kernels_benchmark(repeats=args.repeats)
    write_report(report, output)
    print(f"wrote {output}")
    print(f"  kernel backend: {report['backend']}")
    for name, micro in report["micros"].items():
        print(f"  {name}: {micro['ratio']:.2f}x")
    violations = list(gate_kernels_report(report))
    if violations:
        for line in violations:
            print(f"VIOLATION: {line}")
        return 1
    print("kernels gate: every micro at or above its ratio floor")
    return 0


def _cmd_bench_classes(args: argparse.Namespace) -> int:
    from repro.bench.classes import (
        gate_class_report,
        run_class_benchmark,
        write_report,
    )

    output = (
        args.output if args.output != "BENCH_exec.json" else "BENCH_classes.json"
    )
    report = run_class_benchmark(user_counts=tuple(args.users))
    write_report(report, output)
    print(f"wrote {output}")
    for label in sorted(report["scales"], key=int):
        entry = report["scales"][label]
        print(
            f"  users={label}: {entry['n_classes']} classes, "
            f"caches plan={entry['plan_cache_entries']} "
            f"run={entry['run_cache_entries']} "
            f"result={entry['result_cache_entries']}, "
            f"{entry['users_per_sec']:.0f} canonicalizations/s, "
            f"{entry['queries_per_sec']:.0f} q/s"
        )
    violations = gate_class_report(report)
    if violations:
        for line in violations:
            print(f"VIOLATION: {line}")
        return 1
    print("class-collapse gate: cache growth bounded by #classes, not #users")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dol",
        description="DOL access control labeling for XML (ICDE 2005 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_xmark = sub.add_parser("xmark", help="generate an XMark-like document")
    p_xmark.add_argument("--items", type=int, default=100)
    p_xmark.add_argument("--seed", type=int, default=42)
    p_xmark.add_argument("--pretty", action="store_true")
    p_xmark.add_argument("-o", "--output")
    p_xmark.set_defaults(func=_cmd_xmark)

    p_inspect = sub.add_parser("inspect", help="print document statistics")
    p_inspect.add_argument("file")
    p_inspect.set_defaults(func=_cmd_inspect)

    backend_names = available_backends()

    p_label = sub.add_parser(
        "label", help="build the labeling backends and compare sizes"
    )
    p_label.add_argument("file")
    p_label.add_argument("--subjects", type=int, default=1)
    p_label.add_argument("--accessibility", type=float, default=0.5)
    p_label.add_argument("--propagation", type=float, default=0.3)
    p_label.add_argument("--seed", type=int, default=0)
    p_label.add_argument(
        "--labeling",
        choices=backend_names + ("all",),
        default="all",
        help="report one backend only (default: all side by side)",
    )
    p_label.add_argument(
        "--classes",
        action="store_true",
        help="also report access-class counts (single subjects and pairs)",
    )
    p_label.set_defaults(func=_cmd_label)

    p_build = sub.add_parser(
        "build", help="build a page store from an XML file and save it"
    )
    p_build.add_argument("file")
    p_build.add_argument("store", help="path for the page file")
    p_build.add_argument("--subjects", type=int, default=2)
    p_build.add_argument("--accessibility", type=float, default=0.7)
    p_build.add_argument("--propagation", type=float, default=0.3)
    p_build.add_argument("--seed", type=int, default=0)
    p_build.add_argument("--page-size", type=int, default=4096)
    p_build.add_argument(
        "--labeling", choices=backend_names, default=DEFAULT_BACKEND
    )
    p_build.add_argument(
        "--codec",
        choices=("none", "zlib", "structure-delta"),
        default="none",
        help="page-interior codec: none (plain v2 layout), zlib (DEFLATE "
        "both containers), or structure-delta (delta+varint structure, "
        "DEFLATE codes); recorded in the catalog",
    )
    p_build.set_defaults(func=_cmd_build)

    p_query = sub.add_parser("query", help="evaluate a twig query")
    p_query.add_argument("file")
    p_query.add_argument("query")
    p_query.add_argument(
        "--subject",
        type=_parse_subject,
        default=None,
        help="subject id, or comma-separated ids for user-level "
        "evaluation (rights are the union)",
    )
    p_query.add_argument("--semantics", choices=SEMANTICS, default=CHO)
    p_query.add_argument(
        "--labeling",
        choices=backend_names,
        default=DEFAULT_BACKEND,
        help="access-labeling backend for secure evaluation",
    )
    p_query.add_argument("--accessibility", type=float, default=0.7)
    p_query.add_argument("--seed", type=int, default=0)
    p_query.add_argument("--limit", type=int, default=10)
    p_query.add_argument(
        "--explain",
        action="store_true",
        help="print the compiled physical plan instead of executing",
    )
    p_query.add_argument(
        "--explain-analyze",
        action="store_true",
        help="execute, then print the plan with per-operator rows/timings",
    )
    p_query.add_argument(
        "--exec-mode",
        choices=("batch", "tuple"),
        default="batch",
        help="operator set: vectorized batches (default) or row-at-a-time",
    )
    p_query.set_defaults(func=_cmd_query)

    p_bench = sub.add_parser(
        "bench",
        help="batch-vs-tuple execution benchmark with optional baseline gate",
    )
    p_bench.add_argument(
        "--suite",
        choices=("exec", "classes", "kernels"),
        default="exec",
        help="exec: batch-vs-tuple timing; classes: class-collapse "
        "cache-growth benchmark; kernels: array-kernel micros "
        "(run intersection, columnar decode, leaf NPM) with ratio gates",
    )
    p_bench.add_argument(
        "--users", type=int, nargs="+", default=[1_000, 10_000, 100_000],
        help="simulated-user population sizes (classes suite only)",
    )
    p_bench.add_argument(
        "--sizes", type=int, nargs="+", default=[40, 80, 160],
        help="XMark n_items per benchmarked document",
    )
    p_bench.add_argument("--repeats", type=int, default=3)
    p_bench.add_argument("--semantics", choices=SEMANTICS, default=CHO)
    p_bench.add_argument("-o", "--output", default="BENCH_exec.json")
    p_bench.add_argument(
        "--baseline", default=None,
        help="committed report to diff against (e.g. BENCH_baseline.json)",
    )
    p_bench.add_argument(
        "--threshold", type=float, default=0.25,
        help="max relative speedup drop tolerated before failing",
    )
    p_bench.add_argument(
        "--storage-codec",
        choices=("structure-delta", "zlib", "none"),
        default="structure-delta",
        help="page codec for the compressed-vs-plain storage gate at the "
        "largest size (exec suite only; none skips the gate)",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_explain = sub.add_parser(
        "explain", help="print the NoK logical plan and the physical plan"
    )
    p_explain.add_argument("file")
    p_explain.add_argument("query")
    p_explain.add_argument(
        "--analyze",
        action="store_true",
        help="also execute and print per-operator row counts and timings",
    )
    p_explain.set_defaults(func=_cmd_explain)

    p_diss = sub.add_parser(
        "disseminate", help="filter an XML file for one subject"
    )
    p_diss.add_argument("file")
    p_diss.add_argument("--subject", type=int, default=0)
    p_diss.add_argument("--policy", choices=("prune", "hoist"), default="prune")
    p_diss.add_argument(
        "--labeling", choices=backend_names, default=DEFAULT_BACKEND
    )
    p_diss.add_argument("--accessibility", type=float, default=0.7)
    p_diss.add_argument("--seed", type=int, default=0)
    p_diss.add_argument("-o", "--output")
    p_diss.set_defaults(func=_cmd_disseminate)

    p_fsck = sub.add_parser(
        "verify-store", help="check a saved page store for corruption"
    )
    p_fsck.add_argument("store", help="path to the page file")
    p_fsck.add_argument(
        "--catalog", default=None, help="sidecar catalog (default: <store>.catalog.json)"
    )
    p_fsck.add_argument(
        "--json", action="store_true",
        help="machine-readable fsck report (findings, corrupt pages, WAL state)",
    )
    p_fsck.set_defaults(func=_cmd_verify_store)

    p_health = sub.add_parser(
        "health",
        help="probe a running server's health (exit 0/1/2 = healthy/degraded/unavailable)",
    )
    p_health.add_argument("--host", default="127.0.0.1")
    p_health.add_argument("--port", type=int, default=8787)
    p_health.add_argument("--timeout", type=float, default=5.0)
    p_health.add_argument("--json", action="store_true")
    p_health.set_defaults(func=_cmd_health)

    p_serve = sub.add_parser(
        "serve",
        help="serve secure queries over newline-delimited JSON on TCP",
    )
    p_serve.add_argument("file", help="XML document to serve")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8787)
    p_serve.add_argument("--workers", type=int, default=4)
    p_serve.add_argument(
        "--queue-depth", type=int, default=16,
        help="extra requests admitted beyond busy workers before shedding",
    )
    p_serve.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request deadline in seconds (0 disables)",
    )
    p_serve.add_argument(
        "--labeling", default=DEFAULT_BACKEND, choices=available_backends()
    )
    p_serve.add_argument("--subjects", type=int, default=8)
    p_serve.add_argument("--propagation", type=float, default=0.85)
    p_serve.add_argument("--accessibility", type=float, default=0.5)
    p_serve.add_argument("--seed", type=int, default=42)
    p_serve.add_argument(
        "--chaos-seed", type=int, default=None,
        help="inject seeded faults at every layer (storage/service/network) "
        "for resilience drills; NOT for real serving",
    )
    p_serve.add_argument(
        "--server", choices=("thread", "async"), default="thread",
        help="thread: one handler thread per connection (protocol v1); "
        "async: event-loop server speaking protocol v1+v2 with "
        "multiplexing and fragment streaming",
    )
    p_serve.add_argument(
        "--http-port", type=int, default=None,
        help="also serve POST /query, GET /health, GET /metrics over HTTP "
        "on this port (async server only; 0 picks a free port)",
    )
    p_serve.add_argument(
        "--max-request-bytes", type=int, default=None,
        help="largest accepted request frame (default 1 MiB)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_loadgen = sub.add_parser(
        "loadgen",
        help="benchmark serving: open-loop load against both servers, "
        "latency histograms to BENCH_serving.json",
    )
    p_loadgen.add_argument("--items", type=int, default=300,
                           help="LiveLink surrogate size (items)")
    p_loadgen.add_argument("--groups", type=int, default=16)
    p_loadgen.add_argument("--users", type=int, default=2000,
                           help="simulated user population (subject sets)")
    p_loadgen.add_argument("--workers", type=int, default=4)
    p_loadgen.add_argument("--queue-depth", type=int, default=16)
    p_loadgen.add_argument(
        "--connections", type=int, nargs="+", default=[8, 64],
        help="connection counts to profile",
    )
    p_loadgen.add_argument("--requests", type=int, default=200,
                           help="requests per profile")
    p_loadgen.add_argument("--rate", type=float, default=400.0,
                           help="offered load in requests/second")
    p_loadgen.add_argument(
        "--labeling", default=DEFAULT_BACKEND, choices=available_backends()
    )
    p_loadgen.add_argument("--seed", type=int, default=0)
    p_loadgen.add_argument("--out", default="BENCH_serving.json")
    p_loadgen.add_argument(
        "--gate", action="store_true",
        help="exit 1 unless the machine-independent serving gates pass",
    )
    p_loadgen.set_defaults(func=_cmd_loadgen)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
