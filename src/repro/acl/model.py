"""Subjects, action modes, and the accessibility matrix.

The paper models fine-grained access control as a function
``accessible : S x M x D -> {true, false}`` over subjects ``S``, action
modes ``M`` and document nodes ``D`` (Section 2). We store it per mode as a
list of integer bitmasks, one per document position: bit ``s`` of
``mask[pos]`` is 1 iff subject ``s`` may access node ``pos`` in that mode.

Arbitrary-precision Python ints make the per-node *access control list* a
single hashable value, which is exactly what the DOL codebook dictionary-
compresses.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import AccessControlError, UnknownSubjectError

READ = "read"


class SubjectRegistry:
    """Registry of access control subjects (users and groups).

    Subjects are identified by dense integer ids in registration order;
    names are unique. Group membership (the paper's separately-maintained
    subject hierarchy) is recorded so callers can resolve a *user's*
    effective rights as the union of the user's own subject and its groups.
    """

    def __init__(self) -> None:
        self._names: List[str] = []
        self._ids: Dict[str, int] = {}
        self._groups_of: Dict[int, List[int]] = {}
        self._is_group: List[bool] = []

    def add(self, name: str, is_group: bool = False) -> int:
        """Register a subject and return its id."""
        if name in self._ids:
            raise AccessControlError(f"duplicate subject name {name!r}")
        subject_id = len(self._names)
        self._names.append(name)
        self._ids[name] = subject_id
        self._is_group.append(is_group)
        return subject_id

    def add_many(self, names: Iterable[str], is_group: bool = False) -> List[int]:
        """Register several subjects, returning their ids."""
        return [self.add(name, is_group) for name in names]

    def id_of(self, name: str) -> int:
        """Look up a subject id by name."""
        try:
            return self._ids[name]
        except KeyError:
            raise UnknownSubjectError(f"unknown subject {name!r}") from None

    def name_of(self, subject_id: int) -> str:
        """Look up a subject name by id."""
        self._check(subject_id)
        return self._names[subject_id]

    def is_group(self, subject_id: int) -> bool:
        """True if the subject is a group rather than an individual user."""
        self._check(subject_id)
        return self._is_group[subject_id]

    def enroll(self, user_id: int, group_id: int) -> None:
        """Record that ``user_id`` is a member of ``group_id``."""
        self._check(user_id)
        self._check(group_id)
        if not self._is_group[group_id]:
            raise AccessControlError(
                f"subject {self._names[group_id]!r} is not a group"
            )
        self._groups_of.setdefault(user_id, []).append(group_id)

    def groups_of(self, user_id: int) -> List[int]:
        """Groups the user belongs to (direct membership only)."""
        self._check(user_id)
        return list(self._groups_of.get(user_id, []))

    def effective_subjects(self, user_id: int) -> List[int]:
        """The user's own subject id plus all its groups, transitively."""
        self._check(user_id)
        seen = {user_id}
        frontier = [user_id]
        while frontier:
            current = frontier.pop()
            for group in self._groups_of.get(current, []):
                if group not in seen:
                    seen.add(group)
                    frontier.append(group)
        return sorted(seen)

    def _check(self, subject_id: int) -> None:
        if not 0 <= subject_id < len(self._names):
            raise UnknownSubjectError(f"unknown subject id {subject_id}")

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self):
        return iter(range(len(self._names)))


class AccessMatrix:
    """The accessibility function for one document.

    Parameters
    ----------
    n_nodes:
        Number of document positions.
    n_subjects:
        Number of access control subjects.
    modes:
        Action mode names; defaults to a single ``"read"`` mode, matching
        the paper's single-mode presentation.
    """

    def __init__(
        self,
        n_nodes: int,
        n_subjects: int,
        modes: Optional[Sequence[str]] = None,
    ):
        if n_nodes <= 0:
            raise AccessControlError("matrix needs at least one node")
        if n_subjects <= 0:
            raise AccessControlError("matrix needs at least one subject")
        self.n_nodes = n_nodes
        self.n_subjects = n_subjects
        self.modes: List[str] = list(modes) if modes else [READ]
        if len(set(self.modes)) != len(self.modes):
            raise AccessControlError("duplicate mode names")
        self._masks: Dict[str, List[int]] = {
            mode: [0] * n_nodes for mode in self.modes
        }

    # -- mutation ----------------------------------------------------------

    def set_accessible(
        self, subject: int, pos: int, value: bool, mode: str = READ
    ) -> None:
        """Grant or revoke one (subject, node, mode) right."""
        self._check(subject, pos, mode)
        bit = 1 << subject
        if value:
            self._masks[mode][pos] |= bit
        else:
            self._masks[mode][pos] &= ~bit

    def set_mask(self, pos: int, mask: int, mode: str = READ) -> None:
        """Replace the full access control list of one node."""
        self._check(0, pos, mode)
        if mask < 0 or mask >> self.n_subjects:
            raise AccessControlError(
                f"mask {mask:#x} has bits outside {self.n_subjects} subjects"
            )
        self._masks[mode][pos] = mask

    def fill_subject(self, subject: int, value: bool, mode: str = READ) -> None:
        """Set one subject's accessibility uniformly on every node."""
        self._check(subject, 0, mode)
        bit = 1 << subject
        masks = self._masks[mode]
        for pos in range(self.n_nodes):
            if value:
                masks[pos] |= bit
            else:
                masks[pos] &= ~bit

    def grant_range(
        self, subject: int, start: int, end: int, mode: str = READ
    ) -> None:
        """Grant one subject access to the contiguous positions [start, end).

        Subtrees are contiguous in document order, so this is the natural
        bulk operation for recursive (subtree) grants.
        """
        self._check(subject, start, mode)
        if not start < end <= self.n_nodes:
            raise AccessControlError(f"invalid range [{start}, {end})")
        bit = 1 << subject
        masks = self._masks[mode]
        for pos in range(start, end):
            masks[pos] |= bit

    def copy_where(
        self, target: int, source_mask: int, mode: str = READ
    ) -> None:
        """Grant ``target`` on every node where any bit of ``source_mask``
        is set — e.g. give a user the union of its groups' rights."""
        self._check(target, 0, mode)
        bit = 1 << target
        masks = self._masks[mode]
        for pos in range(self.n_nodes):
            if masks[pos] & source_mask:
                masks[pos] |= bit

    # -- queries -----------------------------------------------------------

    def accessible(self, subject: int, pos: int, mode: str = READ) -> bool:
        """The paper's accessible(s, m, d) predicate."""
        self._check(subject, pos, mode)
        return bool(self._masks[mode][pos] >> subject & 1)

    def mask(self, pos: int, mode: str = READ) -> int:
        """The access control list of a node as an integer bitmask."""
        self._check(0, pos, mode)
        return self._masks[mode][pos]

    def masks(self, mode: str = READ) -> List[int]:
        """All per-node bitmasks in document order (read-only copy)."""
        self._check(0, 0, mode)
        return list(self._masks[mode])

    def subject_vector(self, subject: int, mode: str = READ) -> List[bool]:
        """Single-subject accessibility in document order."""
        self._check(subject, 0, mode)
        return [bool(m >> subject & 1) for m in self._masks[mode]]

    def accessible_count(self, mode: str = READ) -> int:
        """Total number of (subject, node) grants in a mode."""
        self._check(0, 0, mode)
        return sum(bin(m).count("1") for m in self._masks[mode])

    def user_mask_view(
        self, effective_subjects: Sequence[int], mode: str = READ
    ) -> List[bool]:
        """Per-node accessibility for a *user*: union over their subjects.

        Implements the footnote of Section 4: a user's actual rights are
        the union of her own subject's rights and her groups' rights.
        """
        self._check(0, 0, mode)
        combined = 0
        for subject in effective_subjects:
            self._check(subject, 0, mode)
            combined |= 1 << subject
        return [bool(m & combined) for m in self._masks[mode]]

    # -- construction helpers ----------------------------------------------

    @classmethod
    def from_function(
        cls,
        n_nodes: int,
        n_subjects: int,
        fn: Callable[[int, int], bool],
        modes: Optional[Sequence[str]] = None,
    ) -> "AccessMatrix":
        """Build a (single-mode) matrix from ``fn(subject, pos) -> bool``."""
        matrix = cls(n_nodes, n_subjects, modes)
        mode = matrix.modes[0]
        for pos in range(n_nodes):
            mask = 0
            for subject in range(n_subjects):
                if fn(subject, pos):
                    mask |= 1 << subject
            matrix._masks[mode][pos] = mask
        return matrix

    @classmethod
    def from_masks(
        cls, masks: Sequence[int], n_subjects: int, mode: str = READ
    ) -> "AccessMatrix":
        """Build a single-mode matrix from per-node bitmasks."""
        matrix = cls(len(masks), n_subjects, [mode])
        for pos, mask in enumerate(masks):
            matrix.set_mask(pos, mask, mode)
        return matrix

    def restrict_to_subjects(
        self, subjects: Sequence[int], mode: str = READ
    ) -> "AccessMatrix":
        """Project the matrix onto a subset of subjects (re-indexed densely).

        Used by the Figure 5/6 experiments, which sample random subject
        subsets and rebuild DOLs for the subset only.
        """
        self._check(0, 0, mode)
        projected = AccessMatrix(self.n_nodes, max(len(subjects), 1), [mode])
        for pos in range(self.n_nodes):
            source = self._masks[mode][pos]
            mask = 0
            for new_id, old_id in enumerate(subjects):
                self._check(old_id, 0, mode)
                if source >> old_id & 1:
                    mask |= 1 << new_id
            projected._masks[mode][pos] = mask
        return projected

    def _check(self, subject: int, pos: int, mode: str) -> None:
        if mode not in self._masks:
            raise AccessControlError(f"unknown action mode {mode!r}")
        if not 0 <= subject < self.n_subjects:
            raise UnknownSubjectError(f"subject {subject} out of range")
        if not 0 <= pos < self.n_nodes:
            raise AccessControlError(f"node position {pos} out of range")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AccessMatrix):
            return NotImplemented
        return (
            self.n_nodes == other.n_nodes
            and self.n_subjects == other.n_subjects
            and self.modes == other.modes
            and self._masks == other._masks
        )
