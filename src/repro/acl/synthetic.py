"""Synthetic access control workloads (Section 5 methodology).

The paper generates synthetic access controls over XMark documents by:

1. randomly choosing *seed* nodes (a ``propagation_ratio`` fraction of all
   nodes; the root is always a seed so every node ends up labeled),
2. labeling each seed accessible with probability ``accessibility_ratio``,
3. simulating *horizontal locality* by giving each seed's direct siblings
   the same accessibility (unless the sibling is itself a seed), and
4. simulating *vertical locality* by propagating labels to descendants with
   the Most-Specific-Override policy (a node inherits from its closest
   labeled ancestor).

:func:`generate_synthetic_acl` reproduces exactly that procedure.
:func:`generate_correlated_acl` extends it to multiple subjects whose
rights are correlated through a small number of shared *profiles* — the
mechanism behind the paper's multi-user compression results.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.acl.model import AccessMatrix
from repro.errors import AccessControlError
from repro.xmltree.document import NO_NODE, Document


@dataclass(frozen=True)
class SyntheticACLConfig:
    """Parameters of the Section 5 synthetic generator."""

    propagation_ratio: float = 0.3
    accessibility_ratio: float = 0.5
    horizontal_locality: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.propagation_ratio <= 1.0:
            raise AccessControlError("propagation_ratio must be in (0, 1]")
        if not 0.0 <= self.accessibility_ratio <= 1.0:
            raise AccessControlError("accessibility_ratio must be in [0, 1]")


def single_subject_labels(doc: Document, config: SyntheticACLConfig) -> List[bool]:
    """Per-node accessibility for one subject, in document order."""
    rng = random.Random(config.seed)
    n = len(doc)

    n_seeds = max(1, round(config.propagation_ratio * n))
    seed_positions = set(rng.sample(range(n), n_seeds))
    seed_positions.add(0)  # the paper always seeds the document root

    labels: Dict[int, bool] = {
        pos: rng.random() < config.accessibility_ratio for pos in seed_positions
    }

    if config.horizontal_locality:
        # Direct siblings of a seed copy its accessibility, provided the
        # sibling is not itself a seed (and was not already labeled by an
        # earlier seed — first seed wins, like the paper's random order).
        for pos in sorted(seed_positions):
            par = doc.parent[pos]
            if par == NO_NODE:
                continue
            for sibling in doc.children(par):
                if sibling not in labels:
                    labels[sibling] = labels[pos]

    # Vertical locality: Most-Specific-Override propagation down the tree.
    vector = [False] * n
    for pos in range(n):
        if pos in labels:
            vector[pos] = labels[pos]
        else:
            vector[pos] = vector[doc.parent[pos]]
    return vector


def generate_synthetic_acl(
    doc: Document,
    config: Optional[SyntheticACLConfig] = None,
    n_subjects: int = 1,
) -> AccessMatrix:
    """Generate a synthetic accessibility matrix for ``n_subjects``.

    Subjects are independent draws (fresh RNG stream per subject) — the
    worst case for multi-subject compression, matching how the paper uses
    synthetic data for single-subject experiments only.
    """
    config = config if config is not None else SyntheticACLConfig()
    matrix = AccessMatrix(len(doc), n_subjects)
    for subject in range(n_subjects):
        subject_config = SyntheticACLConfig(
            propagation_ratio=config.propagation_ratio,
            accessibility_ratio=config.accessibility_ratio,
            horizontal_locality=config.horizontal_locality,
            seed=config.seed * 10_007 + subject,
        )
        vector = single_subject_labels(doc, subject_config)
        for pos, value in enumerate(vector):
            if value:
                matrix.set_accessible(subject, pos, True)
    return matrix


def generate_correlated_acl(
    doc: Document,
    n_subjects: int,
    n_profiles: int = 4,
    mutation_rate: float = 0.02,
    config: Optional[SyntheticACLConfig] = None,
) -> AccessMatrix:
    """Multi-subject ACLs with controlled inter-subject correlation.

    A small set of *profiles* (departments, in the paper's intuition) each
    get an independent synthetic labeling; every subject copies one profile
    and then re-seeds a ``mutation_rate`` fraction of subtrees with flipped
    accessibility. ``mutation_rate=0`` gives perfectly correlated subjects;
    large rates approach independence.
    """
    if n_profiles <= 0:
        raise AccessControlError("need at least one profile")
    if not 0.0 <= mutation_rate <= 1.0:
        raise AccessControlError("mutation_rate must be in [0, 1]")
    config = config if config is not None else SyntheticACLConfig()
    rng = random.Random(config.seed ^ 0x5EED)
    n = len(doc)

    profiles: List[List[bool]] = []
    for p in range(n_profiles):
        profile_config = SyntheticACLConfig(
            propagation_ratio=config.propagation_ratio,
            accessibility_ratio=config.accessibility_ratio,
            horizontal_locality=config.horizontal_locality,
            seed=config.seed * 31 + 7 * p + 1,
        )
        profiles.append(single_subject_labels(doc, profile_config))

    matrix = AccessMatrix(n, n_subjects)
    n_mutations = round(mutation_rate * n)
    for subject in range(n_subjects):
        vector = list(profiles[rng.randrange(n_profiles)])
        for _ in range(n_mutations):
            root = rng.randrange(n)
            flipped = not vector[root]
            for pos in range(root, doc.subtree_end(root)):
                vector[pos] = flipped
        for pos, value in enumerate(vector):
            if value:
                matrix.set_accessible(subject, pos, True)
    return matrix
