"""Surrogates for the paper's real multi-user access control datasets.

The paper evaluates multi-subject DOL on two proprietary datasets: a
production OpenText LiveLink instance (65,768 tree-structured items, 8,639
subjects, 10 action modes, average depth 7.9 / max 19) and a University of
Waterloo multi-user Unix file system (1.3M files, 182 users, 65 groups).
Neither is available, so this module generates *surrogates* that reproduce
the two properties the experiments measure:

- **structural locality** — rights are granted on subtrees (departments,
  project folders, home directories) and propagate downward, and
- **inter-subject correlation** — users derive their rights from a much
  smaller number of groups/roles, so distinct access control lists are few.

Both generators are seeded and size-parameterized so benchmarks can scale
them from CI-sized to paper-sized instances.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.acl.model import AccessMatrix, SubjectRegistry
from repro.errors import AccessControlError
from repro.xmltree.document import Document
from repro.xmltree.node import Node

#: The ten LiveLink permission levels (names after the product's ACL UI).
LIVELINK_MODES = (
    "see",
    "see_contents",
    "modify",
    "edit_attributes",
    "add_items",
    "reserve",
    "delete_versions",
    "delete",
    "edit_permissions",
    "administer",
)


@dataclass
class SurrogateDataset:
    """A generated tree + subjects + accessibility matrix bundle."""

    doc: Document
    registry: SubjectRegistry
    matrix: AccessMatrix

    @property
    def n_subjects(self) -> int:
        return self.matrix.n_subjects


def _random_tree(
    rng: random.Random,
    n_nodes: int,
    tag: str,
    max_children: int,
    depth_bias: float,
) -> Node:
    """Grow a random ordered tree of ``n_nodes`` elements.

    ``depth_bias`` in (0, 1) steers the expected depth: attachment points
    are drawn from the most recently created nodes with that probability,
    which produces deep, path-like regions (LiveLink's average depth of ~8)
    instead of a flat star.
    """
    root = Node(tag)
    nodes = [root]
    while len(nodes) < n_nodes:
        if rng.random() < depth_bias:
            parent = nodes[rng.randrange(max(0, len(nodes) - 8), len(nodes))]
        else:
            parent = nodes[rng.randrange(len(nodes))]
        if len(parent.children) >= max_children:
            parent = nodes[rng.randrange(len(nodes))]
        child = Node(tag)
        parent.append(child)
        nodes.append(child)
    return root


def generate_livelink(
    n_items: int = 2000,
    n_groups: int = 12,
    n_users: int = 60,
    modes: Sequence[str] = LIVELINK_MODES,
    grants_per_group: int = 6,
    user_extra_rate: float = 0.05,
    seed: int = 0,
) -> SurrogateDataset:
    """Generate a LiveLink-like collaboration hierarchy with ACLs.

    Groups receive recursive grants on a handful of subtrees ("department
    folders"); deeper permission levels are nested subsets of shallower
    ones (you cannot ``delete`` what you cannot ``see``), which yields the
    cross-mode correlation observed in the real system. Users copy the
    rights of their groups and add a few idiosyncratic personal grants.
    """
    if n_items < 10:
        raise AccessControlError("n_items must be at least 10")
    rng = random.Random(seed)
    root = _random_tree(rng, n_items, "item", max_children=12, depth_bias=0.6)
    doc = Document.from_tree(root)
    n = len(doc)

    registry = SubjectRegistry()
    group_ids = registry.add_many(
        (f"group{i}" for i in range(n_groups)), is_group=True
    )
    user_ids = registry.add_many(f"user{i}" for i in range(n_users))
    for user in user_ids:
        for group in rng.sample(group_ids, k=rng.randint(1, min(3, n_groups))):
            registry.enroll(user, group)

    matrix = AccessMatrix(n, len(registry), modes=list(modes))

    def grant_subtree(subject: int, pos: int, up_to_mode: int) -> None:
        end = doc.subtree_end(pos)
        for mode_index in range(up_to_mode + 1):
            matrix.grant_range(subject, pos, end, matrix.modes[mode_index])

    # Group grants: each group owns a few subtrees; the permission depth on
    # each subtree is geometric (most grants are see/see_contents only).
    for group in group_ids:
        for _ in range(grants_per_group):
            pos = rng.randrange(n)
            depth = 0
            while depth < len(modes) - 1 and rng.random() < 0.55:
                depth += 1
            grant_subtree(group, pos, depth)

    # Users inherit the union of their groups, plus occasional extras.
    for user in user_ids:
        combined = 0
        for group in registry.groups_of(user):
            combined |= 1 << group
        for mode in matrix.modes:
            matrix.copy_where(user, combined, mode)
        n_extra = max(0, round(user_extra_rate * grants_per_group * 2))
        for _ in range(rng.randint(0, n_extra)):
            pos = rng.randrange(n)
            depth = rng.randrange(2)
            grant_subtree(user, pos, depth)

    return SurrogateDataset(doc, registry, matrix)


def generate_unix_fs(
    n_nodes: int = 3000,
    n_users: int = 40,
    n_groups: int = 10,
    world_readable_rate: float = 0.35,
    group_readable_rate: float = 0.5,
    permission_inherit_rate: float = 0.9,
    seed: int = 0,
) -> SurrogateDataset:
    """Generate a Unix-filesystem-like tree with per-user read accessibility.

    The tree has per-user home subtrees and per-group project subtrees;
    ownership is assigned at subtree roots and inherited (files in a home
    directory belong to that user). A node's subject accessibility follows
    the Unix read rule: owner bit for the owner, group bit for members of
    the owning group, world bit otherwise. Group *subjects* are accessible
    where the group bit (or world bit) grants their members read access,
    mirroring how the paper treats groups as first-class subjects.
    """
    if n_nodes < n_users + n_groups + 10:
        raise AccessControlError("n_nodes too small for the requested subjects")
    rng = random.Random(seed)

    registry = SubjectRegistry()
    group_ids = registry.add_many(
        (f"grp{i}" for i in range(n_groups)), is_group=True
    )
    user_ids = registry.add_many(f"usr{i}" for i in range(n_users))
    user_groups: List[List[int]] = []
    for user in user_ids:
        member_of = rng.sample(group_ids, k=rng.randint(1, min(3, n_groups)))
        user_groups.append(member_of)
        for group in member_of:
            registry.enroll(user, group)

    # Build the directory tree: /home/<user>/... and /proj/<group>/...
    root = Node("dir")
    home = root.append(Node("dir"))
    proj = root.append(Node("dir"))
    subtree_owner: List[tuple] = []  # (node, owner_user, owner_group)
    for user in user_ids:
        user_home = home.append(Node("dir"))
        subtree_owner.append((user_home, user, rng.choice(user_groups[user - n_groups])))
    for group in group_ids:
        group_proj = proj.append(Node("dir"))
        members = [u for u in user_ids if group in registry.groups_of(u)]
        owner = rng.choice(members) if members else rng.choice(user_ids)
        subtree_owner.append((group_proj, owner, group))

    # Fill with files/directories under random owned subtrees.
    anchors = [entry[0] for entry in subtree_owner]
    grown: List[List[Node]] = [[anchor] for anchor in anchors]
    current = root.size()
    while current < n_nodes:
        idx = rng.randrange(len(anchors))
        parent_pool = grown[idx]
        parent = parent_pool[rng.randrange(len(parent_pool))]
        is_dir = rng.random() < 0.25
        child = parent.append(Node("dir" if is_dir else "file"))
        if is_dir:
            parent_pool.append(child)
        current += 1

    doc = Document.from_tree(root)
    n = len(doc)

    # Assign (owner, group, permission bits) per node: inherited from the
    # owning subtree root; permissions drawn per node.
    owner_of = [user_ids[0]] * n
    group_of = [group_ids[0]] * n
    anchor_positions = {}
    # Map original Node objects to document positions via a preorder walk
    # of the same tree that Document.from_tree flattened.
    position_of = {}
    for pos, node in enumerate(root.iter_preorder()):
        position_of[id(node)] = pos
    for node, owner, group in subtree_owner:
        anchor_positions[position_of[id(node)]] = (owner, group)
    inherited = [(user_ids[0], group_ids[0])] * n
    for pos in range(n):
        par = doc.parent[pos]
        current_og = inherited[par] if par >= 0 else (user_ids[0], group_ids[0])
        if pos in anchor_positions:
            current_og = anchor_positions[pos]
        inherited[pos] = current_og
        owner_of[pos], group_of[pos] = current_og

    # Permission bits are strongly inherited down the directory tree (the
    # structural locality real file systems exhibit: `chmod` decisions are
    # made per directory, not per file).
    matrix = AccessMatrix(n, len(registry))
    group_members = {
        group: {u for u in user_ids if group in registry.groups_of(u)}
        for group in group_ids
    }
    perm_bits: List[tuple] = [(False, False)] * n
    for pos in range(n):
        par = doc.parent[pos]
        if par >= 0 and rng.random() < permission_inherit_rate:
            world_ok, group_ok = perm_bits[par]
        else:
            world_ok = rng.random() < world_readable_rate
            group_ok = world_ok or rng.random() < group_readable_rate
        perm_bits[pos] = (world_ok, group_ok)

        owner, group = owner_of[pos], group_of[pos]
        mask = 1 << owner
        if group_ok:
            mask |= 1 << group
            for member in group_members[group]:
                mask |= 1 << member
        if world_ok:
            mask = (1 << len(registry)) - 1
        matrix.set_mask(pos, mask)

    return SurrogateDataset(doc, registry, matrix)
