"""Rule-based access control policies.

The paper assumes the *net effect* of a high-level rule language (Jajodia et
al. [12], Bertino et al. [5]) has been materialized into an accessibility
map. This module provides that front end: administrators write a small set
of :class:`AccessRule` objects; :meth:`Policy.compile` propagates them over
a document with the Most-Specific-Override policy and produces the
:class:`~repro.acl.model.AccessMatrix` the rest of the system consumes.

Rule targets are simple absolute paths (``/site/regions/africa``), rooted
descendant patterns (``//keyword``), or explicit node positions. Rules are
either *local* (apply to the matched node only) or *recursive* (cascade to
the whole subtree, overridden by more specific rules below).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.acl.model import READ, AccessMatrix
from repro.errors import AccessControlError
from repro.xmltree.document import NO_NODE, Document

DENY_OVERRIDES = "deny-overrides"
GRANT_OVERRIDES = "grant-overrides"
LAST_RULE_WINS = "last-rule-wins"

_CONFLICT_POLICIES = (DENY_OVERRIDES, GRANT_OVERRIDES, LAST_RULE_WINS)

Target = Union[str, int]


@dataclass(frozen=True)
class AccessRule:
    """One authorization rule.

    Attributes
    ----------
    subject:
        Subject id the rule applies to.
    target:
        A path expression (``/a/b``, ``//tag``) or an explicit document
        position.
    grant:
        True for a positive authorization, False for a negative one.
    recursive:
        Cascade to the target's whole subtree (overridden by more specific
        rules), versus applying to the target node only.
    mode:
        Action mode the rule governs.
    """

    subject: int
    target: Target
    grant: bool
    recursive: bool = True
    mode: str = READ


def select(doc: Document, path: str) -> List[int]:
    """Evaluate a simple path expression against a document.

    Supports absolute child paths (``/site/regions``), a rooted descendant
    prefix (``//keyword`` = every node with that tag), and ``*`` wildcards
    in child steps. This is intentionally a small subset — full twig queries
    live in :mod:`repro.nok`.
    """
    if path.startswith("//"):
        tag = path[2:]
        if not tag or "/" in tag:
            raise AccessControlError(f"invalid descendant pattern {path!r}")
        if tag == "*":
            return list(range(len(doc)))
        return doc.positions_with_tag(tag)
    if not path.startswith("/"):
        raise AccessControlError(f"path {path!r} must be absolute")
    steps = path[1:].split("/")
    if any(not step for step in steps):
        raise AccessControlError(f"empty step in path {path!r}")
    current = [0] if steps[0] in ("*", doc.tag_name(0)) else []
    for step in steps[1:]:
        next_level: List[int] = []
        for pos in current:
            for child in doc.children(pos):
                if step == "*" or doc.tag_name(child) == step:
                    next_level.append(child)
        current = next_level
    return current


class Policy:
    """An ordered collection of access rules over one document."""

    def __init__(
        self,
        doc: Document,
        n_subjects: int,
        conflict: str = DENY_OVERRIDES,
        default_grant: bool = False,
    ):
        if conflict not in _CONFLICT_POLICIES:
            raise AccessControlError(
                f"conflict policy must be one of {_CONFLICT_POLICIES}"
            )
        self.doc = doc
        self.n_subjects = n_subjects
        self.conflict = conflict
        self.default_grant = default_grant
        self.rules: List[AccessRule] = []

    def add_rule(self, rule: AccessRule) -> None:
        """Append a rule (later rules matter under last-rule-wins)."""
        if not 0 <= rule.subject < self.n_subjects:
            raise AccessControlError(f"subject {rule.subject} out of range")
        self.rules.append(rule)

    def grant(self, subject: int, target: Target, recursive: bool = True) -> None:
        """Convenience wrapper for a positive rule."""
        self.add_rule(AccessRule(subject, target, True, recursive))

    def deny(self, subject: int, target: Target, recursive: bool = True) -> None:
        """Convenience wrapper for a negative rule."""
        self.add_rule(AccessRule(subject, target, False, recursive))

    def compile(self, modes: Optional[Sequence[str]] = None) -> AccessMatrix:
        """Materialize the rules into an accessibility matrix.

        Each subject's rules are resolved per target node (conflict policy),
        then recursive decisions cascade down the tree with Most-Specific-
        Override: a node inherits from its closest ancestor that carries a
        recursive decision; local decisions override at their node only.
        Unlabeled nodes fall back to ``default_grant`` (closed world by
        default).
        """
        modes = list(modes) if modes else sorted({r.mode for r in self.rules} | {READ})
        matrix = AccessMatrix(len(self.doc), self.n_subjects, modes)
        for mode in modes:
            for subject in range(self.n_subjects):
                decisions = self._node_decisions(subject, mode)
                vector = self._propagate(decisions)
                for pos, value in enumerate(vector):
                    if value:
                        matrix.set_accessible(subject, pos, True, mode)
        return matrix

    # -- internals -----------------------------------------------------------

    def _resolve_target(self, target: Target) -> List[int]:
        if isinstance(target, int):
            if not 0 <= target < len(self.doc):
                raise AccessControlError(f"node position {target} out of range")
            return [target]
        return select(self.doc, target)

    def _node_decisions(
        self, subject: int, mode: str
    ) -> Dict[int, Tuple[Optional[bool], Optional[bool]]]:
        """Per-node (local_decision, recursive_decision) for one subject."""
        local: Dict[int, List[bool]] = {}
        cascade: Dict[int, List[bool]] = {}
        for rule in self.rules:
            if rule.subject != subject or rule.mode != mode:
                continue
            bucket = cascade if rule.recursive else local
            for pos in self._resolve_target(rule.target):
                bucket.setdefault(pos, []).append(rule.grant)
        decisions: Dict[int, Tuple[Optional[bool], Optional[bool]]] = {}
        for pos in set(local) | set(cascade):
            decisions[pos] = (
                self._combine(local.get(pos)),
                self._combine(cascade.get(pos)),
            )
        return decisions

    def _combine(self, votes: Optional[List[bool]]) -> Optional[bool]:
        if not votes:
            return None
        if self.conflict == DENY_OVERRIDES:
            return all(votes)
        if self.conflict == GRANT_OVERRIDES:
            return any(votes)
        return votes[-1]

    def _propagate(
        self, decisions: Dict[int, Tuple[Optional[bool], Optional[bool]]]
    ) -> List[bool]:
        doc = self.doc
        vector = [self.default_grant] * len(doc)
        inherited = [self.default_grant] * len(doc)
        for pos in range(len(doc)):
            par = doc.parent[pos]
            inh = self.default_grant if par == NO_NODE else inherited[par]
            local, cascade = decisions.get(pos, (None, None))
            if cascade is not None:
                inh = cascade
            inherited[pos] = inh
            vector[pos] = local if local is not None else inh
        return vector
