"""Fine-grained access control substrate.

Models the paper's accessibility function ``accessible : S x M x D ->
{true, false}`` (Section 2) as an :class:`~repro.acl.model.AccessMatrix`
over a flattened document, plus:

- :mod:`~repro.acl.policy` — rule-based specifications compiled into a
  matrix via Most-Specific-Override propagation.
- :mod:`~repro.acl.synthetic` — the synthetic seed-based workload of
  Section 5 (propagation ratio, accessibility ratio, horizontal/vertical
  locality).
- :mod:`~repro.acl.surrogates` — LiveLink-like and Unix-filesystem-like
  multi-user access control data generators.
"""

from repro.acl.model import AccessMatrix, SubjectRegistry
from repro.acl.policy import AccessRule, Policy
from repro.acl.synthetic import SyntheticACLConfig, generate_synthetic_acl

__all__ = [
    "AccessMatrix",
    "AccessRule",
    "Policy",
    "SubjectRegistry",
    "SyntheticACLConfig",
    "generate_synthetic_acl",
]
