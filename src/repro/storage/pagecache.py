"""Decoded-page cache: the top layer of the pager stack.

Decoding a page — CRC check, container decompression, entry
reconstruction — costs far more than the read itself once pages are
compressed. The :class:`~repro.storage.buffer.BufferPool` caches *raw*
page bytes, and historically the store kept decoded entries in a dict
tied to buffer frames: evicting a frame dropped its decode, so a hot
scan over a store larger than the pool re-decoded every page on every
pass. This cache holds decoded pages in their own bounded LRU, sized
independently of the buffer pool, so frame eviction no longer implies
re-decompression.

Invalidation contract (same as the RunCache): a committed write is the
only event that changes what a page decodes to. The store invalidates
rewritten page ids *before* publishing the new epoch, so a reader that
observes the new epoch never sees a stale decode; readers still on the
old epoch go through their snapshot's frozen pre-images, never this
cache. ``drop_caches`` and page quarantine also evict.

Entries are immutable ``(PageHeader, tuple(NodeEntry), codes)`` decodes;
sharing one object across threads is safe, which is the point — decode
once under the buffer latch, serve everywhere.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class PageCacheStats:
    """Counters for the decoded-page cache (monotonic, thread-safe holder)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    def snapshot(self) -> Dict[str, int]:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hits / total, 4) if total else 0.0,
        }


@dataclass
class DecodedPageCache:
    """Bounded LRU of decoded pages keyed by page id.

    ``capacity <= 0`` disables caching (every ``get`` is a miss and
    ``put`` is a no-op) — useful for memory-constrained benches.
    """

    capacity: int = 256
    stats: PageCacheStats = field(default_factory=PageCacheStats)

    def __post_init__(self) -> None:
        self._lock = threading.RLock()
        self._pages: "OrderedDict[int, object]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._pages)

    def get(self, page_id: int) -> Optional[object]:
        with self._lock:
            decoded = self._pages.get(page_id)
            if decoded is None:
                self.stats.misses += 1
                return None
            self._pages.move_to_end(page_id)
            self.stats.hits += 1
            return decoded

    def put(self, page_id: int, decoded: object) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            self._pages[page_id] = decoded
            self._pages.move_to_end(page_id)
            while len(self._pages) > self.capacity:
                self._pages.popitem(last=False)
                self.stats.evictions += 1

    def invalidate(self, page_id: int) -> None:
        """Drop one page's decode (called before the commit publishes)."""
        with self._lock:
            if self._pages.pop(page_id, None) is not None:
                self.stats.invalidations += 1

    def clear(self) -> None:
        with self._lock:
            if self._pages:
                self.stats.invalidations += len(self._pages)
            self._pages.clear()


__all__ = ["DecodedPageCache", "PageCacheStats"]
