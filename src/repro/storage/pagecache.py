"""Decoded-page cache: the top layer of the pager stack.

Decoding a page — CRC check, container decompression, columnar
reconstruction — costs far more than the read itself once pages are
compressed. The :class:`~repro.storage.buffer.BufferPool` caches *raw*
page bytes, and historically the store kept decoded entries in a dict
tied to buffer frames: evicting a frame dropped its decode, so a hot
scan over a store larger than the pool re-decoded every page on every
pass. This cache holds decoded pages in their own bounded LRU, sized
independently of the buffer pool, so frame eviction no longer implies
re-decompression.

Accounting is in **bytes of decoded data**, not entry or page counts:
each cached object reports its size through an ``nbytes`` attribute (the
columnar arrays of a :class:`~repro.storage.codecs.PageColumns`;
``sys.getsizeof`` for objects without one), and eviction keeps the total
at or below ``capacity_bytes``. Counting pages was honest when every
decode weighed the same; columnar decodes shrink with the data, so a
byte budget admits proportionally more hot pages.

Invalidation contract (same as the RunCache): a committed write is the
only event that changes what a page decodes to. The store invalidates
rewritten page ids *before* publishing the new epoch, so a reader that
observes the new epoch never sees a stale decode; readers still on the
old epoch go through their snapshot's frozen pre-images, never this
cache. ``drop_caches`` and page quarantine also evict.

Entries are immutable decoded pages; sharing one object across threads
is safe, which is the point — decode once under the buffer latch, serve
everywhere.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: default decoded-page budget: 4 MiB of columnar arrays
DEFAULT_DECODED_CACHE_BYTES = 4 << 20


@dataclass
class PageCacheStats:
    """Counters for the decoded-page cache (monotonic, thread-safe holder)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    #: decoded bytes currently resident (a gauge, not a counter)
    bytes_cached: int = 0

    def snapshot(self) -> Dict[str, int]:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "bytes_cached": self.bytes_cached,
            "hit_rate": round(self.hits / total, 4) if total else 0.0,
        }


def _cost_of(decoded: object) -> int:
    """Bytes one cached decode is charged for (floor of 1 per entry)."""
    nbytes = getattr(decoded, "nbytes", None)
    if nbytes is None:
        nbytes = sys.getsizeof(decoded)
    return max(int(nbytes), 1)


@dataclass
class DecodedPageCache:
    """Bounded LRU of decoded pages keyed by page id, measured in bytes.

    ``capacity_bytes <= 0`` disables caching (every ``get`` is a miss and
    ``put`` is a no-op) — useful for memory-constrained benches. A single
    decode larger than the whole budget is admitted alone (the cache
    would otherwise thrash on every page).
    """

    capacity_bytes: int = DEFAULT_DECODED_CACHE_BYTES
    stats: PageCacheStats = field(default_factory=PageCacheStats)

    def __post_init__(self) -> None:
        self._lock = threading.RLock()
        self._pages: "OrderedDict[int, Tuple[object, int]]" = OrderedDict()
        self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._pages)

    @property
    def nbytes(self) -> int:
        """Total decoded bytes currently cached."""
        with self._lock:
            return self._bytes

    def get(self, page_id: int) -> Optional[object]:
        with self._lock:
            held = self._pages.get(page_id)
            if held is None:
                self.stats.misses += 1
                return None
            self._pages.move_to_end(page_id)
            self.stats.hits += 1
            return held[0]

    def put(self, page_id: int, decoded: object) -> None:
        if self.capacity_bytes <= 0:
            return
        cost = _cost_of(decoded)
        with self._lock:
            old = self._pages.pop(page_id, None)
            if old is not None:
                self._bytes -= old[1]
            self._pages[page_id] = (decoded, cost)
            self._bytes += cost
            while self._bytes > self.capacity_bytes and len(self._pages) > 1:
                _, (_, evicted_cost) = self._pages.popitem(last=False)
                self._bytes -= evicted_cost
                self.stats.evictions += 1
            self.stats.bytes_cached = self._bytes

    def invalidate(self, page_id: int) -> None:
        """Drop one page's decode (called before the commit publishes)."""
        with self._lock:
            held = self._pages.pop(page_id, None)
            if held is not None:
                self._bytes -= held[1]
                self.stats.invalidations += 1
                self.stats.bytes_cached = self._bytes

    def clear(self) -> None:
        with self._lock:
            if self._pages:
                self.stats.invalidations += len(self._pages)
            self._pages.clear()
            self._bytes = 0
            self.stats.bytes_cached = 0


__all__ = ["DecodedPageCache", "DEFAULT_DECODED_CACHE_BYTES", "PageCacheStats"]
