"""In-memory page header table (Section 3.2).

For each disk block the DOL scheme keeps a small access control header: the
access control code of the block's first node, and a *change bit* that is
set iff the block contains any other transition node. The paper keeps all
headers in memory (estimating 3 MB–100 MB per terabyte of XML) so the query
processor can skip pages that are entirely inaccessible to the querying
subject without reading them.

Only labeling backends with ``has_page_hints`` (the DOL) populate headers
with real codes; a hint-free backend (CAM, naive) renders every header as
``first_code=0, change_bit=False``, and the store never consults the
skip test for it — :meth:`NoKStore.page_fully_inaccessible` answers False
before reaching this table.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List

from repro.dol.codebook import Codebook
from repro.errors import StorageError

#: On-page serialized header: first node code (u16), change bit (u8),
#: entry count (u16), 3 pad bytes. 8 bytes total.
HEADER_STRUCT = struct.Struct("<HBHxxx")
HEADER_SIZE = HEADER_STRUCT.size


@dataclass
class PageHeader:
    """Access control header of one page."""

    first_code: int
    change_bit: bool
    n_entries: int

    def pack(self) -> bytes:
        return HEADER_STRUCT.pack(self.first_code, int(self.change_bit), self.n_entries)

    @classmethod
    def unpack(cls, data: bytes) -> "PageHeader":
        first_code, change, n_entries = HEADER_STRUCT.unpack_from(data, 0)
        return cls(first_code, bool(change), n_entries)

    @classmethod
    def expected_for(cls, entries) -> "PageHeader":
        """The header a page's entries imply.

        The first entry of every page is a pseudo-transition carrying the
        running code, so it defines ``first_code``; the change bit must be
        set iff any *other* entry is a transition. Used by the integrity
        checks (``NoKStore.verify``, ``fsck_store``, reopen) to detect a
        stored header that went stale relative to the page body.
        """
        if not entries:
            return cls(0, False, 0)
        change = any(entry.is_transition for entry in entries[1:])
        return cls(entries[0].code, change, len(entries))


class PageHeaderTable:
    """The in-memory mirror of every page's access control header."""

    def __init__(self) -> None:
        self._headers: List[PageHeader] = []

    def append(self, header: PageHeader) -> None:
        self._headers.append(header)

    def set(self, page_index: int, header: PageHeader) -> None:
        self._check(page_index)
        self._headers[page_index] = header

    def get(self, page_index: int) -> PageHeader:
        self._check(page_index)
        return self._headers[page_index]

    def clone(self) -> "PageHeaderTable":
        """An independent copy for a store snapshot.

        :class:`PageHeader` entries are replaced (never mutated in
        place), so a shallow list copy freezes the table's state.
        """
        table = PageHeaderTable()
        table._headers = list(self._headers)
        return table

    def truncate(self, n_pages: int) -> None:
        """Drop headers beyond ``n_pages`` (after a shrinking update)."""
        if n_pages < 0:
            raise StorageError("cannot truncate to a negative page count")
        del self._headers[n_pages:]

    def __len__(self) -> int:
        return len(self._headers)

    def page_fully_inaccessible(self, page_index: int, subject: int, codebook: Codebook) -> bool:
        """The page-skip test of Section 3.3.

        If the first node's code denies the subject and the change bit is
        clear (no other transition in the page), every node in the page is
        inaccessible — the page need not be read at all.
        """
        header = self.get(page_index)
        if header.change_bit:
            return False
        return not codebook.accessible(header.first_code, subject)

    def size_bytes(self) -> int:
        """Memory footprint under the paper's accounting (Section 3.2)."""
        return len(self._headers) * HEADER_SIZE

    def _check(self, page_index: int) -> None:
        if not 0 <= page_index < len(self._headers):
            raise StorageError(f"page index {page_index} out of range")
