"""Block-oriented secondary storage substrate.

Implements the NoK physical storage scheme (Section 3) that DOL piggybacks
on:

- :mod:`~repro.storage.pager` — a file- or memory-backed array of fixed-size
  pages with physical I/O counters.
- :mod:`~repro.storage.buffer` — an LRU buffer pool with hit/miss/eviction
  accounting, so "no additional I/O" claims are measurable.
- :mod:`~repro.storage.encoding` — the succinct document-order structure
  string (close-parenthesis form) and its binary per-node entry layout.
- :mod:`~repro.storage.headers` — the in-memory page header table (first
  node's access code + change bit) that enables page skipping.
- :mod:`~repro.storage.nokstore` — the integrated store: document structure
  with embedded DOL transition codes, next-of-kin navigation, access checks
  that never cost extra I/O, and page-local updates.
"""

from repro.storage.buffer import BufferPool
from repro.storage.encoding import (
    NodeEntry,
    parse_structure_string,
    to_structure_string,
)
from repro.storage.headers import PageHeader, PageHeaderTable
from repro.storage.nokstore import NoKStore
from repro.storage.pager import Pager

__all__ = [
    "BufferPool",
    "NoKStore",
    "NodeEntry",
    "PageHeader",
    "PageHeaderTable",
    "Pager",
    "parse_structure_string",
    "to_structure_string",
]
