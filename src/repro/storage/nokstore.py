"""The integrated NoK + DOL physical store (Section 3.2).

A :class:`NoKStore` lays a flattened document out on fixed-size pages in
document order. Each page holds fixed-width :class:`NodeEntry` records (tag,
depth, subtree size) with the DOL access control codes *embedded*: a node
that is a transition node carries its code in its entry, and the first node
of every page is treated as a transition node regardless (its code also
lives in the page header, mirrored in memory).

Consequences, each measurable through the I/O counters:

- an accessibility check for a node whose page is already loaded costs no
  I/O (the governing transition is on the same page);
- a page whose header code denies the subject and whose change bit is clear
  can be skipped entirely;
- an accessibility update to a subtree of N nodes rewrites only the
  ~N/B pages that hold it (update locality).

The store accepts any :class:`~repro.labeling.base.AccessLabeling`
backend. Only a backend with ``has_page_hints`` (the DOL) embeds its
codes as above — the page layout it defined is unchanged. A hint-free
backend (CAM, naive) keeps its labels beside the pages: entries carry
code 0, the header test answers "cannot skip", accessibility probes
resolve in memory through the backend, and accessibility updates rewrite
no pages (the labeling travels through the catalog instead).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.dol.updates import DOLUpdater
from repro.errors import PageCorruptionError, PageFormatError, StorageError
from repro.labeling.base import AccessLabeling
from repro.storage.buffer import BufferPool
from repro.storage.codecs import PageColumns, resolve_page_format
from repro.storage.encoding import ENTRY_SIZE, NodeEntry
from repro.storage.headers import HEADER_SIZE, PageHeader, PageHeaderTable
from repro.storage.pagecache import DEFAULT_DECODED_CACHE_BYTES, DecodedPageCache
from repro.storage.pager import CHECKSUM_SIZE, DEFAULT_PAGE_SIZE, Pager
from repro.storage.snapshot import StoreSnapshot
from repro.storage.wal import WriteAheadLog
from repro.xmltree.document import NO_NODE, Document


def entries_per_page_for(page_size: int) -> int:
    """Node entries that fit one page beside the header and CRC trailer."""
    return (page_size - HEADER_SIZE - CHECKSUM_SIZE) // ENTRY_SIZE


def wal_path_for(path: str) -> str:
    """Default write-ahead-log location for a page file."""
    return path + ".wal"


@dataclass
class UpdateCost:
    """Physical cost report for a store update."""

    pages_rewritten: int
    transition_delta: int


class NoKStore:
    """Block-oriented document store with pluggable access labeling.

    With a DOL the access codes are embedded in the pages (the paper's
    design); the ``.dol`` attribute remains as a historical alias for
    ``labeling``, whatever the backend.
    """

    def __init__(
        self,
        doc: Document,
        labeling: AccessLabeling,
        path: Optional[str] = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_capacity: int = 64,
        paged_values: bool = False,
        codec=None,
        decoded_cache_bytes: int = DEFAULT_DECODED_CACHE_BYTES,
    ):
        if labeling.n_nodes != len(doc):
            raise StorageError("labeling and document disagree on node count")
        if labeling.has_page_hints and len(labeling.codebook) > 0xFFFF:
            raise StorageError("codebook too large for u16 embedded codes")
        self.doc = doc
        self.labeling = labeling
        self.page_size = page_size
        #: the codec layer for page interiors: ``None``/"none" is the
        #: plain v2 layout, a codec name or per-container dict selects
        #: compressed v3 pages (see :mod:`repro.storage.codecs`)
        self.page_format = resolve_page_format(codec)
        self.entries_per_page = entries_per_page_for(page_size)
        if self.entries_per_page < 1:
            raise StorageError("page size too small for even one node entry")
        self.pager = Pager(path, page_size)
        self.wal: Optional[WriteAheadLog] = None
        self.values = None
        try:
            if path is not None:
                self.wal = WriteAheadLog(wal_path_for(path))
            # Decoded pages live in their own bounded LRU, deliberately
            # *not* tied to buffer frames: evicting raw bytes no longer
            # throws away the (much more expensive) decode. The budget is
            # in decoded bytes — columnar pages are charged what their
            # arrays actually weigh.
            self._decoded = DecodedPageCache(decoded_cache_bytes)
            self._columnar_decodes = 0
            self.quarantined: Set[int] = set()
            #: WAL-recovery outcome stamped by ``open_store`` (``None``
            #: for freshly built stores) — the health model reads it
            self.last_recovery = None
            self.buffer = BufferPool(
                self.pager,
                buffer_capacity,
                wal=self.wal,
            )
            self.headers = PageHeaderTable()
            self._init_concurrency()
            if paged_values:
                from repro.storage.valuestore import ValueStore

                self.values = ValueStore(
                    doc.texts,
                    path=path + ".values" if path else None,
                    page_size=page_size,
                    codec="zlib" if self.page_format.compressed else None,
                )
            self._build()
        except BaseException:
            # Don't leak any file handle when construction fails mid-way.
            self.pager.close()
            if self.wal is not None:
                self.wal.close()
            if self.values is not None:
                self.values.close()
            raise

    # -- construction -----------------------------------------------------------

    @classmethod
    def attach(
        cls,
        doc: Document,
        labeling: AccessLabeling,
        pager,
        headers: PageHeaderTable,
        buffer_capacity: int = 64,
        wal: Optional[WriteAheadLog] = None,
        codec=None,
        entries_per_page: Optional[int] = None,
        decoded_cache_bytes: int = DEFAULT_DECODED_CACHE_BYTES,
    ) -> "NoKStore":
        """Wrap already-written pages (used when reopening a saved store).

        ``codec`` and ``entries_per_page`` come from the catalog: a
        compressed store records both (its density was chosen at build
        time), an untagged catalog is a plain v2 store at the fixed-width
        density.
        """
        if labeling.n_nodes != len(doc):
            raise StorageError("labeling and document disagree on node count")
        store = cls.__new__(cls)
        store.doc = doc
        store.labeling = labeling
        store.page_size = pager.page_size
        store.page_format = resolve_page_format(codec)
        store.entries_per_page = entries_per_page or entries_per_page_for(
            pager.page_size
        )
        store.pager = pager
        store.wal = wal
        store._decoded = DecodedPageCache(decoded_cache_bytes)
        store._columnar_decodes = 0
        store.quarantined = set()
        store.last_recovery = None
        store.buffer = BufferPool(
            pager,
            buffer_capacity,
            wal=wal,
        )
        store.headers = headers
        store.values = None
        store._n_data_pages = len(headers)
        store._init_concurrency()
        return store

    def _init_concurrency(self) -> None:
        """Single-writer lock + snapshot publication state.

        The writer lock is the *outermost* storage lock (see DESIGN.md
        §10): every Section 3.4 update holds it across labeling mutation,
        page rewrite and snapshot publication. Readers never take it —
        they bind to the published :class:`StoreSnapshot`, whose
        acquisition after the first call is a plain reference load.
        """
        self._writer_lock = threading.RLock()
        self._epoch = 0
        self._snapshot: Optional[StoreSnapshot] = None

    @classmethod
    def open(
        cls,
        path: str,
        catalog_path: Optional[str] = None,
        buffer_capacity: int = 64,
        labeling: Optional[str] = None,
    ) -> "NoKStore":
        """Reopen a saved store (see :func:`repro.storage.persist.open_store`).

        ``labeling`` asserts the expected backend name; a catalog written
        by a different backend raises :class:`ValueError` naming both.
        """
        from repro.storage.persist import open_store

        return open_store(
            path, catalog_path, buffer_capacity, labeling=labeling
        )

    @property
    def dol(self) -> AccessLabeling:
        """Historical alias for :attr:`labeling` (any backend, not only DOL)."""
        return self.labeling

    @property
    def has_page_hints(self) -> bool:
        """Whether the labeling embeds page-skip hints (DOL only)."""
        return self.labeling.has_page_hints

    @property
    def n_nodes(self) -> int:
        return len(self.doc)

    @property
    def n_pages(self) -> int:
        """Pages currently holding document data.

        May be fewer than the pager's allocated pages after a shrinking
        structural update (page files do not shrink in place).
        """
        return self._n_data_pages

    def page_of(self, pos: int) -> int:
        """Page index holding document position ``pos``."""
        self._check(pos)
        return pos // self.entries_per_page

    # -- snapshots (concurrent serving; DESIGN.md §10) ---------------------------

    @property
    def epoch(self) -> int:
        """Monotonic commit counter; bumped by every committed update."""
        return self._epoch

    def snapshot(self) -> StoreSnapshot:
        """The current immutable read view of this store.

        The first call materializes it (under the writer lock, so the
        clone cannot tear against a committing update); afterwards every
        committed update publishes a successor, and acquiring the current
        snapshot is a single reference load — readers never block on
        writers.
        """
        snap = self._snapshot
        if snap is not None:
            return snap
        with self._writer_lock:
            if self._snapshot is None:
                self._snapshot = self._make_snapshot()
            return self._snapshot

    def _make_snapshot(self) -> StoreSnapshot:
        return StoreSnapshot(
            self,
            self._epoch,
            self.doc,
            self.labeling.clone(),
            self.headers.clone(),
            self._n_data_pages,
        )

    def _freeze_pages(self, first_page: int, last_page_exclusive: int) -> None:
        """Copy-on-write: stash pre-images into the outgoing snapshot.

        Must run (writer lock held) *before* any page in the range is
        rewritten — snapshot readers rely on "overlay installed before
        rewrite" to close their read/recheck race. A no-op while no
        snapshot has ever been taken (single-threaded usage pays nothing).
        """
        prior = self._snapshot
        if prior is None:
            return
        for page_id in range(first_page, min(last_page_exclusive, self.pager.n_pages)):
            if page_id in prior._overlay:
                continue
            data = self.buffer.peek(page_id)
            if data is None:
                data = self.pager.read_page_raw(page_id)
            prior._overlay[page_id] = data

    def _publish_snapshot(self) -> None:
        """Commit point for readers: bump the epoch and atomically swap in
        a fresh snapshot, linking the outgoing one to its successor.

        Runs with the writer lock held, after the update fully applied.
        In-flight readers keep the outgoing snapshot: its labeling,
        headers and document were cloned/immutable, and its page overlay
        was filled by :meth:`_freeze_pages` before any byte changed.
        """
        self._epoch += 1
        prior = self._snapshot
        if prior is None:
            return
        successor = self._make_snapshot()
        prior._next = successor
        self._snapshot = successor

    def _build(self) -> None:
        rendered = self._render_all_pages()
        self._n_data_pages = 0
        for data, header in rendered:
            page_id = self.pager.allocate()
            self.pager.write_page(page_id, data)
            self.headers.append(header)
            self._n_data_pages += 1
        self.reset_io_stats()

    def _render_all_pages(self) -> "List[tuple[bytes, PageHeader]]":
        """Render the whole document, choosing the density for v3 pages.

        A compressed page packs as many entries as its *encoded*
        structure container plus worst-case codes room allow, so density
        is data-dependent: start at the format's hard ceiling and back
        off geometrically until every page satisfies the fit invariant.
        The plain format renders at the fixed-width density and any
        overflow is a real error.
        """
        if self.page_format.compressed:
            self.entries_per_page = self.page_format.max_entries(self.page_size)
        while True:
            try:
                return [
                    self._render_page_bytes(first)
                    for first in range(0, self.n_nodes, self.entries_per_page)
                ]
            except PageFormatError:
                if not self.page_format.compressed or self.entries_per_page <= 1:
                    raise
                self.entries_per_page = max(1, self.entries_per_page * 3 // 4)

    def _render_page_bytes(self, first: int) -> "tuple[bytes, PageHeader]":
        doc, labeling = self.doc, self.labeling
        embed = labeling.has_page_hints
        last = min(first + self.entries_per_page, self.n_nodes)
        change_bit = False
        entries: List[NodeEntry] = []
        for pos in range(first, last):
            # Hint-free backends render the structural layout unchanged
            # but with no access information: every entry carries code 0
            # (the page-initial pseudo-transition included), so the bytes
            # say nothing the backend doesn't answer in memory.
            is_transition = embed and labeling.is_transition(pos)
            if pos == first:
                code = labeling.code_at(pos) if embed else 0
                entry_transition = True
            else:
                code = labeling.code_at(pos) if is_transition else 0
                entry_transition = is_transition
                change_bit = change_bit or is_transition
            entries.append(
                NodeEntry(
                    tag_id=doc.tags[pos],
                    depth=doc.depth[pos],
                    subtree=doc.subtree[pos],
                    code=code,
                    is_transition=entry_transition,
                )
            )
        header = PageHeader(
            first_code=labeling.code_at(first) if embed else 0,
            change_bit=change_bit,
            n_entries=last - first,
        )
        return self.page_format.encode_page(header, entries, self.page_size), header

    # -- page access ---------------------------------------------------------------

    def _page(self, page_id: int) -> PageColumns:
        if page_id in self.quarantined:
            raise PageCorruptionError(page_id, detail="page is quarantined")
        # The whole lookup runs under the pool latch so the decode cache
        # and the frame LRU stay coherent when many readers share the
        # store (view() re-enters the same RLock). A decode-cache hit
        # still records the logical access but needs no frame — the
        # decode outlives the raw bytes it came from.
        with self.buffer.latched():
            decoded = self._decoded.get(page_id)
            if decoded is not None:
                self.buffer.touch(page_id)
                return decoded
            view = self.buffer.view(page_id)
            decoded = self._decode(view)
            self._decoded.put(page_id, decoded)
            return decoded

    def quarantine(self, page_id: int) -> None:
        """Mark a page corrupt: further access raises without re-reading.

        Used by the execution layer's ``strict=False`` degradation mode —
        the page is reported once and skipped afterwards, instead of the
        scan re-reading (and re-failing on) the same bytes per candidate.
        """
        with self.buffer.latched():
            self.quarantined.add(page_id)
            self._decoded.invalidate(page_id)

    def clear_quarantine(self) -> Set[int]:
        """Optimistically forget quarantined pages; returns what was held.

        The circuit breaker's half-open probe calls this before a strict
        re-read: transient corruption (a flipped bit on the read path, not
        on disk) verifies clean the second time and the store heals; truly
        rotten pages fail the probe and re-enter quarantine. Frames are
        dropped for the cleared pages so the probe really re-reads them.
        """
        with self.buffer.latched():
            cleared = set(self.quarantined)
            self.quarantined.clear()
            for page_id in cleared:
                self.buffer.drop(page_id)
                self._decoded.invalidate(page_id)
            return cleared

    def _decode(self, data) -> PageColumns:
        """Decode page bytes (or a borrowed view) through the codec layer.

        Bulk columnar decode: the structural columns come straight out of
        the page containers as arrays, and the running access code at
        each offset is precomputed, so the cached
        :class:`~repro.storage.codecs.PageColumns` answers accessibility
        probes without touching the raw bytes again.
        """
        self._columnar_decodes += 1
        return self.page_format.decode_page_columns(data)

    @property
    def columnar_decodes(self) -> int:
        """Pages decoded columnar-ly since the store opened (monotonic)."""
        return self._columnar_decodes

    def entry(self, pos: int) -> NodeEntry:
        """The stored record for position ``pos`` (loads its page).

        Object-at-a-time compat surface: materializes the page's
        :class:`NodeEntry` view on first touch (cached with the decode).
        """
        self._check(pos)
        page = self._page(pos // self.entries_per_page)
        return page.entries[pos % self.entries_per_page]

    def page_entries(self, page_id: int) -> List[NodeEntry]:
        """All decoded entries of one page — one buffer fetch.

        A thin view over :meth:`page_columns` kept for object-at-a-time
        callers (fsck, tuple-mode operators, tests).
        """
        return self._page(page_id).entries

    def page_columns(self, page_id: int) -> PageColumns:
        """The columnar decode of one page — the batch executor's face.

        A sorted candidate batch groups its positions by page and reads
        each page group's tag/subtree columns by slice, no per-entry
        objects.
        """
        return self._page(page_id)

    # -- navigation (the next-of-kin primitives) -------------------------------------

    def tag_id(self, pos: int) -> int:
        return self.entry(pos).tag_id

    def tag_name(self, pos: int) -> str:
        return self.doc.tag_dict.name_of(self.entry(pos).tag_id)

    def text(self, pos: int) -> str:
        """Node text, from the separate NoK value store.

        With ``paged_values=True`` the value pages go through their own
        buffer pool (I/O-accounted); otherwise values are served from
        memory.
        """
        self._check(pos)
        if self.values is not None:
            return self.values.text(pos)
        return self.doc.texts[pos]

    def attrs_of(self, pos: int):
        """Node attributes (served with the value store's metadata)."""
        self._check(pos)
        return self.doc.attrs[pos]

    def first_child(self, pos: int) -> int:
        """FIRST-CHILD of Algorithm 1; ``NO_NODE`` for leaves."""
        return pos + 1 if self.entry(pos).subtree > 1 else NO_NODE

    def following_sibling(self, pos: int) -> int:
        """FOLLOWING-SIBLING of Algorithm 1; ``NO_NODE`` at the end."""
        here = self.entry(pos)
        nxt = pos + here.subtree
        if nxt >= self.n_nodes:
            return NO_NODE
        return nxt if self.entry(nxt).depth == here.depth else NO_NODE

    def subtree_end(self, pos: int) -> int:
        return pos + self.entry(pos).subtree

    # -- access control (Section 3.3) ---------------------------------------------

    def access_code_at(self, pos: int) -> int:
        """Access control code governing ``pos`` (page-hint backends only).

        Found on the node's own page (the first node of every page is a
        transition node), so this never costs I/O beyond the page that the
        caller is already reading.
        """
        self._check(pos)
        page = self._page(pos // self.entries_per_page)
        return page.codes[pos % self.entries_per_page]

    def accessible(self, subject: int, pos: int) -> bool:
        """ACCESS of Algorithm 1.

        With a DOL the check reads the embedded code on the node's page
        (zero extra I/O); a hint-free backend answers from memory.
        """
        if not self.has_page_hints:
            self._check(pos)
            return self.labeling.accessible(subject, pos)
        return self.labeling.codebook.accessible(self.access_code_at(pos), subject)

    def accessible_any(self, subjects, pos: int) -> bool:
        """User-level ACCESS: true if any of the subjects is granted."""
        if not self.has_page_hints:
            self._check(pos)
            return self.labeling.accessible_any(subjects, pos)
        mask = self.labeling.codebook.decode(self.access_code_at(pos))
        return any(mask >> subject & 1 for subject in subjects)

    def page_fully_inaccessible(self, page_id: int, subject: int) -> bool:
        """Header-only page-skip test — costs no I/O.

        Always False for hint-free backends: their headers carry no
        access information, so no page can be proven skippable.
        """
        if not self.has_page_hints:
            return False
        return self.headers.page_fully_inaccessible(
            page_id, subject, self.labeling.codebook
        )

    def page_fully_inaccessible_any(self, page_id: int, subjects) -> bool:
        """Page-skip test for a user holding several subjects."""
        if not self.has_page_hints:
            return False
        return all(
            self.headers.page_fully_inaccessible(
                page_id, subject, self.labeling.codebook
            )
            for subject in subjects
        )

    def subtree_fully_inaccessible(self, pos: int, subject: int) -> bool:
        """True if every page covering the subtree can be header-skipped.

        A sufficient (not necessary) condition used by the secure matcher
        to avoid reading pages of entirely inaccessible regions.
        """
        self._check(pos)
        first_page = pos // self.entries_per_page
        last = self.doc.subtree_end(pos) - 1
        last_page = last // self.entries_per_page
        return all(
            self.page_fully_inaccessible(page_id, subject)
            for page_id in range(first_page, last_page + 1)
        )

    # -- updates (Section 3.4) -------------------------------------------------------

    def update_subject_range(
        self, start: int, end: int, subject: int, value: bool
    ) -> UpdateCost:
        """Grant/revoke a subject over [start, end) and rewrite its pages.

        With a DOL the pages holding the range are re-rendered (the
        embedded codes changed); a hint-free backend updates in memory and
        commits only a catalog patch — no page bytes change.

        Updates run under the store's single-writer lock and publish a
        fresh :class:`StoreSnapshot` at commit; queries in flight keep
        reading the snapshot they started on.
        """
        with self._writer_lock:
            if not self.has_page_hints:
                return self._update_in_memory(
                    lambda: self.labeling.set_subject_accessibility(
                        start, end, subject, value
                    ),
                    {
                        "op": "set_subject_range",
                        "start": start,
                        "end": end,
                        "subject": subject,
                        "value": value,
                    },
                )
            ops: List[dict] = []
            updater = DOLUpdater(self.labeling, journal=ops.append)
            delta = updater.set_subject_accessibility(start, end, subject, value)
            pages = self._rewrite_range(start, end, ops)
            return UpdateCost(pages_rewritten=pages, transition_delta=delta)

    def update_range_mask(self, start: int, end: int, mask: int) -> UpdateCost:
        """Replace the ACL of [start, end) and rewrite its pages."""
        with self._writer_lock:
            if not self.has_page_hints:
                return self._update_in_memory(
                    lambda: self.labeling.set_range_mask(start, end, mask),
                    {"op": "set_range_mask", "start": start, "end": end, "mask": mask},
                )
            ops: List[dict] = []
            updater = DOLUpdater(self.labeling, journal=ops.append)
            delta = updater.set_range_mask(start, end, mask)
            pages = self._rewrite_range(start, end, ops)
            return UpdateCost(pages_rewritten=pages, transition_delta=delta)

    def _update_in_memory(self, apply, op: dict) -> UpdateCost:
        """Accessibility update for a backend with no embedded codes.

        The labeling mutates in memory; durability comes from the WAL
        commit record alone, whose catalog patch carries the backend's
        refreshed ``labeling_data``. The caller holds the writer lock;
        the backend's own map invalidation therefore happens inside the
        writer critical section, and old-snapshot readers keep probing
        the labeling clone the last publish gave them.
        """
        self._wal_begin()
        try:
            delta = apply()
            self._wal_commit([op])
        except BaseException:
            self._wal_abort()
            raise
        self._publish_snapshot()
        return UpdateCost(pages_rewritten=0, transition_delta=delta)

    def catalog_state(self) -> Dict[str, object]:
        """The catalog fields a mutation can change.

        This is the payload of a WAL commit record: after replaying the
        batch's pages, recovery overwrites these keys in the on-disk
        catalog so the codebook (and, for structural updates, the texts,
        tags and counts) match the replayed pages.
        """
        doc = self.doc
        labeling = self.labeling
        state: Dict[str, object] = {
            "n_nodes": self.n_nodes,
            "n_pages": self._n_data_pages,
            "tags": [doc.tag_dict.name_of(i) for i in range(len(doc.tag_dict))],
            "texts": list(doc.texts),
            "labeling": labeling.backend_name,
        }
        if labeling.has_page_hints:
            # DOL: the labeling round-trips through the page codes; the
            # catalog only needs the codebook (the pre-refactor layout).
            state["n_subjects"] = labeling.codebook.n_subjects
            state["codebook"] = [
                f"{mask:x}" for _code, mask in labeling.codebook.entries()
            ]
        else:
            state["n_subjects"] = getattr(labeling, "n_subjects", 0)
            state["codebook"] = []
            state["labeling_data"] = labeling.to_catalog()
        if self.page_format.catalog_tag is not None:
            # v3 stores: the codec negotiation tag plus the density the
            # build (or a structural re-pack) chose. Absent on plain
            # stores, which keeps untagged v2 catalogs readable.
            state["codec"] = self.page_format.catalog_tag
            state["entries_per_page"] = self.entries_per_page
        return state

    def _wal_begin(self) -> None:
        if self.wal is not None:
            self.wal.begin()

    def _wal_commit(self, ops: Optional[List[dict]]) -> None:
        if self.wal is not None:
            self.wal.commit(self.catalog_state(), ops)

    def _wal_abort(self) -> None:
        if self.wal is not None:
            self.wal.abort()

    def _rewrite_range(
        self, start: int, end: int, ops: Optional[List[dict]] = None
    ) -> int:
        """Re-render every page overlapping [start, end]; returns the count.

        ``end`` is included because the update may materialize a boundary
        transition at position ``end``. On a file-backed store the whole
        rewrite runs as one WAL batch: each page write is preceded by its
        physiological log record, and the commit record (codebook patch +
        logical ops) is forced before the batch counts as durable.
        """
        if self.has_page_hints and len(self.labeling.codebook) > 0xFFFF:
            raise StorageError("codebook overflow after update")
        first_page = start // self.entries_per_page
        last_pos = min(end, self.n_nodes - 1)
        last_page = last_pos // self.entries_per_page
        # Snapshot isolation: pre-images must land in the outgoing
        # snapshot's overlay before the first byte of the range changes.
        self._freeze_pages(first_page, last_page + 1)
        self._wal_begin()
        try:
            for page_id in range(first_page, last_page + 1):
                # Re-rendering at the same density cannot overflow a v3
                # page: only the codes container changed, and every built
                # page reserves worst-case codes room (the fit invariant).
                data, header = self._render_page_bytes(page_id * self.entries_per_page)
                self.buffer.put(page_id, data)
                self.buffer.flush(page_id)
                self.headers.set(page_id, header)
                self._decoded.invalidate(page_id)
            self._wal_commit(ops)
            self.pager.sync()
        except BaseException:
            self._wal_abort()
            raise
        self._publish_snapshot()
        return last_page - first_page + 1

    def apply_structural_update(self, new_doc: Document, from_pos: int) -> int:
        """Install an edited document, rewriting pages from ``from_pos`` on.

        The caller (``SecuredDocument``) has already spliced the labeling
        to match ``new_doc``. Node entries at positions >= ``from_pos``
        shifted, so every page from ``from_pos``'s page to the new end is
        re-rendered — the physical cost of a structural update. Returns
        the number of pages rewritten.

        Runs under the single-writer lock and publishes a fresh snapshot
        at commit. Readers on older snapshots are untouched: their
        document/labeling/header objects were captured by value, their
        texts come from the frozen document (the value heap rebuilt below
        is not versioned), and every rewritten page that existed at their
        epoch gets its pre-image frozen before the first byte changes.
        """
        with self._writer_lock:
            if self.labeling.n_nodes != len(new_doc):
                raise StorageError(
                    "labeling and edited document disagree on node count"
                )
            self.labeling.rebind_document(new_doc)
            self.doc = new_doc
            if self.values is not None:
                # Value records shifted with the structure: rebuild the heap.
                from repro.storage.valuestore import ValueStore

                old_path = self.values.pager.path
                self.values.close()
                self.values = ValueStore(
                    new_doc.texts,
                    path=old_path,
                    page_size=self.page_size,
                    codec="zlib" if self.page_format.compressed else None,
                )
            first_page = (
                min(from_pos, max(len(new_doc) - 1, 0)) // self.entries_per_page
            )
            needed = -(-len(new_doc) // self.entries_per_page)
            try:
                rendered = [
                    self._render_page_bytes(page_id * self.entries_per_page)
                    for page_id in range(first_page, needed)
                ]
            except PageFormatError:
                if not self.page_format.compressed:
                    raise
                # The edit grew some page's structure container past its
                # reserved room. Re-pack the whole store at a density the
                # new document fits (rendering mutates no stored bytes,
                # so the fallback is safe to run before the WAL batch).
                first_page = 0
                rendered = self._render_all_pages()
                needed = len(rendered)
            # Pre-images for every page this commit rewrites that existed
            # at the outgoing snapshot's epoch (freshly allocated pages
            # beyond the old extent need none — no old reader can reach
            # them, their snapshot's page count bounds the scan).
            self._freeze_pages(first_page, min(needed, self._n_data_pages))
            while self.pager.n_pages < needed:
                self.pager.allocate()
            while len(self.headers) < needed:
                self.headers.append(PageHeader(0, False, 0))
            self._wal_begin()
            try:
                for index, (data, header) in enumerate(rendered):
                    page_id = first_page + index
                    self.buffer.put(page_id, data)
                    self.buffer.flush(page_id)
                    self.headers.set(page_id, header)
                    self._decoded.invalidate(page_id)
                if needed < self._n_data_pages:
                    for stale in range(needed, self._n_data_pages):
                        self._decoded.invalidate(stale)
                    self.headers.truncate(needed)
                self._n_data_pages = needed
                self._wal_commit([{"op": "structural", "from_pos": from_pos}])
                self.pager.sync()
            except BaseException:
                self._wal_abort()
                raise
            self._publish_snapshot()
            return needed - first_page

    def verify(self) -> None:
        """Integrity check: pages must agree with the document and labeling.

        Re-reads every page (bypassing caches) and cross-checks each
        entry's structure fields and running access code (code 0
        throughout for hint-free backends). Raises :class:`StorageError`
        on the first discrepancy — the tool to run after a crash or a
        suspected corruption.
        """
        doc, labeling = self.doc, self.labeling
        embed = labeling.has_page_hints
        pos = 0
        for page_id in range(self.n_pages):
            data = self.pager.read_page(page_id)
            decoded = self._decode(data)
            header = self.headers.get(page_id)
            expected = PageHeader.expected_for(decoded.entries)
            if header != expected:
                raise StorageError(
                    f"page {page_id}: header drift (table {header}, page implies {expected})"
                )
            for offset, entry in enumerate(decoded.entries):
                if entry.tag_id != doc.tags[pos]:
                    raise StorageError(f"position {pos}: tag drift")
                if entry.depth != doc.depth[pos]:
                    raise StorageError(f"position {pos}: depth drift")
                if entry.subtree != doc.subtree[pos]:
                    raise StorageError(f"position {pos}: subtree drift")
                expected_code = labeling.code_at(pos) if embed else 0
                if decoded.codes[offset] != expected_code:
                    raise StorageError(f"position {pos}: access code drift")
                pos += 1
        if pos != self.n_nodes:
            raise StorageError(
                f"pages hold {pos} entries, document has {self.n_nodes}"
            )

    # -- bookkeeping ---------------------------------------------------------------

    def reset_io_stats(self) -> None:
        """Zero both logical and physical counters (e.g. after the build)."""
        self.pager.stats.reset()
        self.buffer.reset_stats()

    def drop_caches(self) -> None:
        """Flush and empty the buffer pool and decode cache (cold start)."""
        with self.buffer.latched():
            self.buffer.clear()
            self._decoded.clear()

    @property
    def decoded_cache(self) -> DecodedPageCache:
        """The decoded-page cache (metrics surface)."""
        return self._decoded

    def close(self) -> None:
        self.buffer.flush_all()
        self.pager.sync()
        self.pager.close()
        if self.wal is not None:
            self.wal.close()
        if self.values is not None:
            self.values.close()

    def __enter__(self) -> "NoKStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check(self, pos: int) -> None:
        if not 0 <= pos < self.n_nodes:
            raise StorageError(f"position {pos} out of range")
