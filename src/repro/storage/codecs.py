"""Per-page container compression: the codec layer of the pager stack.

Leighton & Barbosa (*Optimizing XML Compression*, arXiv:0905.4761) make
the case the NoK page layout is already shaped for: structure and
content compress best *separately*, each with a codec suited to its
statistics. A v2 page body is a fixed-width :class:`NodeEntry` array —
12 bytes per node of which the structural columns (tag, depth, subtree)
are small, slowly-varying integers and the access-control columns
(transition flag, code) are almost entirely zero. This module splits the
body into two **containers** and compresses each independently:

``structure``
    The columnar structural record: ``n`` tags (u16), ``n`` depths
    (u16), ``n`` subtree sizes (u32), concatenated column-wise.
``codes``
    The access-control record: a transition bitmap (one bit per entry)
    followed by one u16 code per *transition* entry only.

Container codecs are total byte→byte functions (``decode(encode(x)) ==
x`` for arbitrary ``x`` — property-tested):

- ``none`` — identity;
- ``zlib`` — DEFLATE;
- ``structure-delta`` — zigzag delta of the little-endian u16 word
  stream, varint-coded: depth deltas are ±1, tag ids draw from a small
  alphabet, and subtree high words are almost always zero, so most
  words cost one byte.

A compressed page (format v3) keeps the v2 :class:`PageHeader` and CRC
trailer exactly where they were::

    PageHeader (8) | codec header (10) | structure blob | codes blob
    | zero padding | CRC32 trailer (4)

The codec header records, per page, the codec id actually used for each
container and both blob lengths — a container whose encoding expands
falls back to ``none`` on that page, so compression can never lose. The
CRC therefore covers the *compressed* bytes, WAL before/after images
carry the compressed page verbatim, and injected bit flips land on
compressed bytes and still fail verification: the PR 2 recovery matrix
and fsck work unchanged.

Fit invariant
-------------
Every compressed page must leave room for its **worst-case** codes
container (bitmap + one u16 per entry), not just the current one.
Accessibility updates rewrite codes in place while the structure bytes
of the page are fixed, so with the invariant an update re-render can
never overflow a page that the build accepted. Structural updates may
still overflow (new structure bytes); :class:`PageFormatError` is the
signal and the store falls back to a full re-pack at a lower density.
"""

from __future__ import annotations

import struct
import sys
import zlib
from array import array
from bisect import bisect_left
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import PageFormatError, StorageError
from repro.storage.encoding import ENTRY_SIZE, FLAG_TRANSITION, NodeEntry
from repro.storage.headers import HEADER_SIZE, PageHeader
from repro.storage.pager import CHECKSUM_SIZE

_BIG_ENDIAN = sys.byteorder == "big"

#: codec ids as recorded in the per-page codec header
CODEC_NONE = 0
CODEC_ZLIB = 1
CODEC_DELTA = 2

CODEC_IDS = {"none": CODEC_NONE, "zlib": CODEC_ZLIB, "structure-delta": CODEC_DELTA}
CODEC_NAMES = {v: k for k, v in CODEC_IDS.items()}

#: per-page codec header: structure codec id (u8), codes codec id (u8),
#: structure blob length (u32), codes blob length (u32)
_CODEC_HEADER = struct.Struct("<BBII")
CODEC_HEADER_SIZE = _CODEC_HEADER.size


# -- varint / zigzag primitives ------------------------------------------------


def _write_varint(out: bytearray, value: int) -> None:
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_varint(data, offset: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        try:
            byte = data[offset]
        except IndexError:
            raise PageFormatError("truncated varint in structure-delta blob")
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise PageFormatError("varint overflow in structure-delta blob")


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63)


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


# -- container codecs ----------------------------------------------------------


def _delta_encode(raw: bytes) -> bytes:
    """Zigzag-delta varint coding of the u16 word stream of ``raw``.

    Total on arbitrary bytes: the leading varint records the raw length,
    and an odd trailing byte rides along verbatim.
    """
    raw = bytes(raw)
    out = bytearray()
    _write_varint(out, len(raw))
    n_words = len(raw) // 2
    prev = 0
    for i in range(n_words):
        word = raw[2 * i] | (raw[2 * i + 1] << 8)
        _write_varint(out, _zigzag(word - prev))
        prev = word
    if len(raw) & 1:
        out.append(raw[-1])
    return bytes(out)


def _delta_decode(blob: bytes) -> bytes:
    raw_len, offset = _read_varint(blob, 0)
    out = bytearray()
    n_words = raw_len // 2
    prev = 0
    for _ in range(n_words):
        delta, offset = _read_varint(blob, offset)
        prev = prev + _unzigzag(delta)
        if not 0 <= prev <= 0xFFFF:
            raise PageFormatError("structure-delta word out of u16 range")
        out.append(prev & 0xFF)
        out.append(prev >> 8)
    if raw_len & 1:
        if offset >= len(blob):
            raise PageFormatError("structure-delta blob missing trailing byte")
        out.append(blob[offset])
        offset += 1
    if len(out) != raw_len:
        raise PageFormatError("structure-delta blob length mismatch")
    return bytes(out)


def encode_container(codec_id: int, raw: bytes) -> bytes:
    """Encode raw container bytes with one codec (no fallback applied)."""
    if codec_id == CODEC_NONE:
        return bytes(raw)
    if codec_id == CODEC_ZLIB:
        return zlib.compress(bytes(raw), 6)
    if codec_id == CODEC_DELTA:
        return _delta_encode(raw)
    raise PageFormatError(f"unknown container codec id {codec_id}")


def decode_container(codec_id: int, blob: bytes) -> bytes:
    """Invert :func:`encode_container`."""
    if codec_id == CODEC_NONE:
        return bytes(blob)
    if codec_id == CODEC_ZLIB:
        try:
            return zlib.decompress(bytes(blob))
        except zlib.error as exc:
            raise PageFormatError(f"corrupt zlib container: {exc}") from exc
    if codec_id == CODEC_DELTA:
        return _delta_decode(blob)
    raise PageFormatError(f"unknown container codec id {codec_id}")


def _encode_best(codec_id: int, raw: bytes) -> Tuple[int, bytes]:
    """Encode with per-page fallback: never store more than the raw form."""
    if codec_id == CODEC_NONE:
        return CODEC_NONE, bytes(raw)
    blob = encode_container(codec_id, raw)
    if len(blob) >= len(raw):
        return CODEC_NONE, bytes(raw)
    return codec_id, blob


# -- container (de)serialization -----------------------------------------------


def structure_container(entries: List[NodeEntry]) -> bytes:
    """Columnar structural record of a page's entries."""
    n = len(entries)
    return struct.pack(
        f"<{n}H{n}H{n}I",
        *(e.tag_id for e in entries),
        *(e.depth for e in entries),
        *(e.subtree for e in entries),
    )


def codes_container(entries: List[NodeEntry]) -> bytes:
    """Transition bitmap + u16 code per transition entry."""
    n = len(entries)
    bitmap = bytearray((n + 7) // 8)
    codes: List[int] = []
    for i, entry in enumerate(entries):
        if entry.is_transition:
            bitmap[i // 8] |= 1 << (i % 8)
            codes.append(entry.code)
    return bytes(bitmap) + struct.pack(f"<{len(codes)}H", *codes)


def worst_case_codes_bytes(n_entries: int) -> int:
    """Upper bound on the codes container: every entry a transition."""
    return (n_entries + 7) // 8 + 2 * n_entries


def entries_from_containers(
    n_entries: int, structure: bytes, codes: bytes
) -> List[NodeEntry]:
    """Rebuild the entry list from decoded container bytes."""
    n = n_entries
    if len(structure) != 8 * n:
        raise PageFormatError(
            f"structure container holds {len(structure)} bytes "
            f"for {n} entries (need {8 * n})"
        )
    fields = struct.unpack(f"<{n}H{n}H{n}I", structure)
    tags, depths, subtrees = fields[:n], fields[n : 2 * n], fields[2 * n :]
    bitmap_len = (n + 7) // 8
    if len(codes) < bitmap_len:
        raise PageFormatError("codes container shorter than its bitmap")
    bitmap = codes[:bitmap_len]
    n_transitions = sum(bin(b).count("1") for b in bitmap)
    expected = bitmap_len + 2 * n_transitions
    if len(codes) != expected:
        raise PageFormatError(
            f"codes container holds {len(codes)} bytes, bitmap implies {expected}"
        )
    code_values = struct.unpack_from(f"<{n_transitions}H", codes, bitmap_len)
    entries: List[NodeEntry] = []
    next_code = 0
    for i in range(n):
        is_transition = bool(bitmap[i // 8] >> (i % 8) & 1)
        code = 0
        if is_transition:
            code = code_values[next_code]
            next_code += 1
        entries.append(
            NodeEntry(
                tag_id=tags[i],
                depth=depths[i],
                subtree=subtrees[i],
                code=code,
                is_transition=is_transition,
            )
        )
    return entries


# -- columnar decoded pages ----------------------------------------------------


class PageColumns:
    """Struct-of-arrays decode of one page — the cached form.

    Columns mirror the on-page containers: ``tags``/``depths`` as
    ``array('H')``, ``subtrees`` as ``array('I')``, plus the transition
    record (``trans_offsets`` as ``array('q')``, ``trans_codes`` as
    ``array('H')``) and the precomputed *running* access code per offset
    (``codes``, ``array('H')`` — what :meth:`access_code_at` reads).

    The batch executor reads the columns directly; point APIs
    (``entry``/``page_entries``) materialize the historical
    :class:`NodeEntry` list lazily as a thin view, so tuple-mode
    operators, fsck and updates run unchanged. ``nbytes`` accounts the
    columnar buffers (the entry view is a compat surface built only when
    object-at-a-time code touches the page).
    """

    __slots__ = (
        "header",
        "n",
        "tags",
        "depths",
        "subtrees",
        "trans_offsets",
        "trans_codes",
        "codes",
        "_entries",
    )

    def __init__(
        self,
        header: PageHeader,
        tags: array,
        depths: array,
        subtrees: array,
        trans_offsets: array,
        trans_codes: array,
    ):
        self.header = header
        self.n = len(tags)
        self.tags = tags
        self.depths = depths
        self.subtrees = subtrees
        self.trans_offsets = trans_offsets
        self.trans_codes = trans_codes
        self.codes = self._running_codes(header.first_code)
        self._entries: Optional[List[NodeEntry]] = None

    def _running_codes(self, first_code: int) -> array:
        """Code in effect at each offset: segments between transitions."""
        flat: List[int] = []
        current = first_code
        prev = 0
        for off, code in zip(self.trans_offsets, self.trans_codes):
            if off > prev:
                flat.extend([current] * (off - prev))
            current = code
            prev = off
        flat.extend([current] * (self.n - prev))
        return array("H", flat)

    @property
    def nbytes(self) -> int:
        """Bytes held by the columnar buffers (cache accounting unit)."""
        total = 0
        for name in ("tags", "depths", "subtrees", "trans_offsets",
                     "trans_codes", "codes"):
            col = getattr(self, name)
            total += len(col) * col.itemsize
        return total

    def is_transition(self, offset: int) -> bool:
        toffs = self.trans_offsets
        i = bisect_left(toffs, offset)
        return i < len(toffs) and toffs[i] == offset

    @property
    def entries(self) -> List[NodeEntry]:
        """The page as :class:`NodeEntry` objects (lazy, then cached)."""
        if self._entries is None:
            tags, depths, subtrees = self.tags, self.depths, self.subtrees
            toffs, tcodes = self.trans_offsets, self.trans_codes
            entries: List[NodeEntry] = []
            ti = 0
            n_trans = len(toffs)
            for i in range(self.n):
                if ti < n_trans and toffs[ti] == i:
                    entries.append(
                        NodeEntry(tags[i], depths[i], subtrees[i], tcodes[ti], True)
                    )
                    ti += 1
                else:
                    entries.append(
                        NodeEntry(tags[i], depths[i], subtrees[i], 0, False)
                    )
            self._entries = entries
        return self._entries

    def entry_at(self, offset: int) -> NodeEntry:
        """One offset as a :class:`NodeEntry` (uses the view if built)."""
        if self._entries is not None:
            return self._entries[offset]
        toffs = self.trans_offsets
        i = bisect_left(toffs, offset)
        if i < len(toffs) and toffs[i] == offset:
            return NodeEntry(
                self.tags[offset], self.depths[offset], self.subtrees[offset],
                self.trans_codes[i], True,
            )
        return NodeEntry(
            self.tags[offset], self.depths[offset], self.subtrees[offset],
            0, False,
        )


def _transition_offsets(bitmap: bytes, n: int) -> array:
    """Set-bit offsets of a transition bitmap, skipping zero bytes."""
    offsets = array("q")
    for byte_idx, byte in enumerate(bitmap):
        if not byte:
            continue
        base = byte_idx * 8
        while byte:
            low = byte & -byte
            offset = base + low.bit_length() - 1
            if offset < n:
                offsets.append(offset)
            byte ^= low
    return offsets


def columns_from_containers(
    header: PageHeader, structure: bytes, codes: bytes
) -> PageColumns:
    """Bulk-decode container bytes into :class:`PageColumns`.

    The structure container is already column order, so the three
    structural columns are straight ``frombytes`` slices — no per-entry
    reconstruction. Validation matches :func:`entries_from_containers`
    (same error messages on the same malformed inputs).
    """
    n = header.n_entries
    if len(structure) != 8 * n:
        raise PageFormatError(
            f"structure container holds {len(structure)} bytes "
            f"for {n} entries (need {8 * n})"
        )
    tags = array("H")
    tags.frombytes(structure[: 2 * n])
    depths = array("H")
    depths.frombytes(structure[2 * n : 4 * n])
    subtrees = array("I")
    subtrees.frombytes(structure[4 * n : 8 * n])
    bitmap_len = (n + 7) // 8
    if len(codes) < bitmap_len:
        raise PageFormatError("codes container shorter than its bitmap")
    bitmap = codes[:bitmap_len]
    trans_offsets = _transition_offsets(bitmap, n)
    # The expected length counts every set bit (padding bits included),
    # exactly as the entry-at-a-time decoder does.
    n_transitions = sum(bin(b).count("1") for b in bitmap)
    expected = bitmap_len + 2 * n_transitions
    if len(codes) != expected:
        raise PageFormatError(
            f"codes container holds {len(codes)} bytes, bitmap implies {expected}"
        )
    trans_codes = array("H")
    trans_codes.frombytes(codes[bitmap_len:])
    if _BIG_ENDIAN:  # containers are little-endian on disk
        tags.byteswap()
        depths.byteswap()
        subtrees.byteswap()
        trans_codes.byteswap()
    return PageColumns(header, tags, depths, subtrees, trans_offsets, trans_codes)


# -- page formats --------------------------------------------------------------


class PlainPageFormat:
    """The v2 page body: a raw fixed-width :class:`NodeEntry` array.

    This is byte-identical to the pre-refactor layout — stores built
    before the codec layer (no catalog tag) decode through it unchanged.
    """

    #: catalog tag; ``None`` marks the untagged, pre-refactor layout
    catalog_tag: Optional[Dict[str, str]] = None
    compressed = False
    structure_codec = "none"
    codes_codec = "none"

    def max_entries(self, page_size: int) -> int:
        return (page_size - HEADER_SIZE - CHECKSUM_SIZE) // ENTRY_SIZE

    def encode_page(
        self, header: PageHeader, entries: List[NodeEntry], page_size: int
    ) -> bytes:
        body = b"".join(entry.pack() for entry in entries)
        total = HEADER_SIZE + len(body)
        budget = page_size - CHECKSUM_SIZE
        if total > budget:
            raise PageFormatError(
                f"{len(entries)} entries need {total} bytes, page holds {budget}"
            )
        return header.pack() + body + bytes(page_size - HEADER_SIZE - len(body))

    def decode_page(self, data) -> Tuple[PageHeader, List[NodeEntry]]:
        header = PageHeader.unpack(data)
        entries: List[NodeEntry] = []
        offset = HEADER_SIZE
        for _ in range(header.n_entries):
            entries.append(NodeEntry.unpack(data, offset))
            offset += ENTRY_SIZE
        return header, entries

    def decode_page_columns(self, data) -> PageColumns:
        """Bulk columnar decode of the fixed-width body.

        The interleaved 12-byte records are read as one u16 word stream;
        each column is then a stride-6 slice (subtree sizes recombine
        from their two words) — no per-entry :class:`NodeEntry` hop.
        """
        header = PageHeader.unpack(data)
        n = header.n_entries
        end = HEADER_SIZE + n * ENTRY_SIZE
        body = bytes(data[HEADER_SIZE:end])
        if len(body) != n * ENTRY_SIZE:
            raise PageFormatError(
                f"page body holds {len(body)} bytes for {n} entries "
                f"(need {n * ENTRY_SIZE})"
            )
        words = array("H")
        words.frombytes(body)
        if _BIG_ENDIAN:
            words.byteswap()
        tags = words[0::6]
        depths = words[1::6]
        sub_lo = words[2::6]
        sub_hi = words[3::6]
        code_col = words[4::6]
        flag_col = words[5::6]
        subtrees = array("I", (lo | (hi << 16) for lo, hi in zip(sub_lo, sub_hi)))
        trans_offsets = array("q")
        trans_codes = array("H")
        for i, flags in enumerate(flag_col):
            if flags & FLAG_TRANSITION:
                trans_offsets.append(i)
                trans_codes.append(code_col[i])
        return PageColumns(
            header, tags, depths, subtrees, trans_offsets, trans_codes
        )

    def container_report(self, data) -> Dict[str, Dict[str, int]]:
        """Physical vs logical container bytes of one stored page."""
        header = PageHeader.unpack(data)
        n = header.n_entries
        # The fixed-width entry interleaves both containers; attribute
        # the structural 8 bytes and code-ish 4 bytes of each record.
        return {
            "structure": {"physical": 8 * n, "logical": 8 * n, "codec": "none"},
            "codes": {
                "physical": ENTRY_SIZE * n - 8 * n,
                "logical": ENTRY_SIZE * n - 8 * n,
                "codec": "none",
            },
        }


class CompressedPageFormat:
    """The v3 page body: separately-compressed structure/codes containers."""

    compressed = True

    def __init__(self, structure: str = "structure-delta", codes: str = "zlib"):
        if structure not in CODEC_IDS:
            raise StorageError(f"unknown structure codec {structure!r}")
        if codes not in CODEC_IDS:
            raise StorageError(f"unknown codes codec {codes!r}")
        self.structure_codec = structure
        self.codes_codec = codes
        self._structure_id = CODEC_IDS[structure]
        self._codes_id = CODEC_IDS[codes]

    @property
    def catalog_tag(self) -> Dict[str, str]:
        return {"structure": self.structure_codec, "codes": self.codes_codec}

    def max_entries(self, page_size: int) -> int:
        """Upper bound on density: even an empty structure container must
        leave worst-case codes room (the fit invariant)."""
        budget = page_size - HEADER_SIZE - CODEC_HEADER_SIZE - CHECKSUM_SIZE
        # worst_case_codes_bytes(n) <= budget  =>  n/8 + 2n + 1 <= budget
        n = max((budget - 1) * 8 // 17, 1)
        while worst_case_codes_bytes(n) > budget:
            n -= 1
        return max(n, 1)

    def encode_page(
        self, header: PageHeader, entries: List[NodeEntry], page_size: int
    ) -> bytes:
        s_id, s_blob = _encode_best(self._structure_id, structure_container(entries))
        c_id, c_blob = _encode_best(self._codes_id, codes_container(entries))
        budget = page_size - CHECKSUM_SIZE
        overhead = HEADER_SIZE + CODEC_HEADER_SIZE
        # Fit invariant: reserve worst-case codes space so accessibility
        # updates (which change only the codes container) always fit.
        if overhead + len(s_blob) + worst_case_codes_bytes(len(entries)) > budget:
            raise PageFormatError(
                f"{len(entries)} entries: structure blob of {len(s_blob)} bytes "
                f"leaves no worst-case codes room in a {page_size}-byte page"
            )
        body = (
            _CODEC_HEADER.pack(s_id, c_id, len(s_blob), len(c_blob))
            + s_blob
            + c_blob
        )
        if HEADER_SIZE + len(body) > budget:
            raise PageFormatError(
                f"{len(entries)} entries overflow a {page_size}-byte page"
            )
        return header.pack() + body + bytes(page_size - HEADER_SIZE - len(body))

    def _containers(self, data) -> Tuple[PageHeader, int, bytes, int, bytes]:
        header = PageHeader.unpack(data)
        try:
            s_id, c_id, s_len, c_len = _CODEC_HEADER.unpack_from(data, HEADER_SIZE)
        except struct.error as exc:
            raise PageFormatError(f"truncated codec header: {exc}") from exc
        start = HEADER_SIZE + CODEC_HEADER_SIZE
        end = start + s_len + c_len
        if end > len(data) - CHECKSUM_SIZE:
            raise PageFormatError(
                f"codec header claims {s_len}+{c_len} container bytes, "
                f"page holds {len(data) - CHECKSUM_SIZE - start}"
            )
        s_blob = bytes(data[start : start + s_len])
        c_blob = bytes(data[start + s_len : end])
        return header, s_id, s_blob, c_id, c_blob

    def decode_page(self, data) -> Tuple[PageHeader, List[NodeEntry]]:
        header, s_id, s_blob, c_id, c_blob = self._containers(data)
        entries = entries_from_containers(
            header.n_entries,
            decode_container(s_id, s_blob),
            decode_container(c_id, c_blob),
        )
        return header, entries

    def decode_page_columns(self, data) -> PageColumns:
        """Columnar decode straight from the compressed containers.

        The structure container is stored column-wise, so after codec
        decompression each column is one ``frombytes`` slice — entry
        reconstruction is skipped entirely.
        """
        header, s_id, s_blob, c_id, c_blob = self._containers(data)
        return columns_from_containers(
            header,
            decode_container(s_id, s_blob),
            decode_container(c_id, c_blob),
        )

    def container_report(self, data) -> Dict[str, Dict[str, int]]:
        header, s_id, s_blob, c_id, c_blob = self._containers(data)
        n = header.n_entries
        return {
            "structure": {
                "physical": len(s_blob),
                "logical": 8 * n,
                "codec": CODEC_NAMES[s_id],
            },
            "codes": {
                "physical": len(c_blob),
                "logical": len(decode_container(c_id, c_blob)),
                "codec": CODEC_NAMES[c_id],
            },
        }


#: The ``--codec`` vocabulary: one name selects both container codecs.
PAGE_CODEC_CONFIGS: Dict[str, Optional[Dict[str, str]]] = {
    "none": None,
    "zlib": {"structure": "zlib", "codes": "zlib"},
    "structure-delta": {"structure": "structure-delta", "codes": "zlib"},
}


def resolve_page_format(
    codec: Union[None, str, Dict[str, str]],
) -> "PlainPageFormat | CompressedPageFormat":
    """Build the page format for a codec spec.

    ``None`` or ``"none"`` is the plain v2 layout; a name from
    :data:`PAGE_CODEC_CONFIGS` selects a container pairing; a dict names
    each container codec explicitly (the catalog's on-disk form).
    """
    if codec is None:
        return PlainPageFormat()
    if isinstance(codec, str):
        if codec not in PAGE_CODEC_CONFIGS:
            raise StorageError(
                f"unknown page codec {codec!r} "
                f"(choose from {sorted(PAGE_CODEC_CONFIGS)})"
            )
        codec = PAGE_CODEC_CONFIGS[codec]
        if codec is None:
            return PlainPageFormat()
    if not isinstance(codec, dict):
        raise StorageError(f"codec spec must be a name or a dict, got {codec!r}")
    return CompressedPageFormat(
        structure=codec.get("structure", "structure-delta"),
        codes=codec.get("codes", "zlib"),
    )


__all__ = [
    "CODEC_IDS",
    "CODEC_NAMES",
    "CODEC_HEADER_SIZE",
    "PAGE_CODEC_CONFIGS",
    "PageColumns",
    "PlainPageFormat",
    "CompressedPageFormat",
    "columns_from_containers",
    "encode_container",
    "decode_container",
    "structure_container",
    "codes_container",
    "entries_from_containers",
    "worst_case_codes_bytes",
    "resolve_page_format",
]
