"""Write-ahead logging for NoK store updates.

The paper's update story (Section 3.4, Proposition 1) is about *how few*
pages an accessibility update rewrites; this module makes those rewrites
survive a crash. Every store mutation runs as a WAL batch of
physiological records:

``BEGIN`` → one ``PAGE`` record per page write (page id + the page's
raw **before-image** and the stamped **after-image**) → ``COMMIT``
(carrying a JSON *catalog patch*: the post-update codebook, texts, tags
and counts, which the sidecar catalog on disk does not yet reflect).

Ordering discipline: a ``PAGE`` record is appended **and fsynced before**
the corresponding data-page write reaches the page file (the WAL rule —
enforced by the buffer pool's write-back hook), and ``COMMIT`` is
appended and fsynced before the batch is considered durable. Recovery at
:func:`~repro.storage.persist.open_store` therefore sees one of three
states and maps each to a clean outcome:

- batches closed by a ``COMMIT``: **redo** — rewrite every after-image
  (idempotent; torn data pages are simply overwritten), then apply the
  catalog patch;
- a trailing batch with no ``COMMIT``: **undo** — restore before-images
  in reverse order, returning the store to its pre-update state;
- a torn record at the tail (the crash hit the log itself): the record
  fails its CRC and is discarded along with everything after it; the
  data page it would have covered was never written, so undo of the
  parsed prefix suffices.

Each record carries its own CRC32, so a torn log write can never be
mistaken for a commit. Checkpointing is ``save_store``'s atomic catalog
rewrite followed by :meth:`WriteAheadLog.truncate` (itself atomic:
fresh file, fsync, ``os.replace``).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import WALError
from repro.storage.faults import FaultPlan, faulted_write

MAGIC = b"DOLWAL02"

REC_BEGIN = 1
REC_PAGE = 2
REC_COMMIT = 3

#: Record header: type (u8), payload length (u32), crc32 of type+payload.
_RECORD = struct.Struct("<BII")
#: PAGE payload prefix: page id (u32), page size (u32).
_PAGE_PREFIX = struct.Struct("<II")


def _record_crc(rtype: int, payload: bytes) -> int:
    return zlib.crc32(bytes([rtype]) + payload) & 0xFFFFFFFF


def _fsync_dir(path: str) -> None:
    """Make a directory entry change (create/replace) durable."""
    directory = os.path.dirname(os.path.abspath(path))
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@dataclass
class WALBatch:
    """One parsed BEGIN..COMMIT group (COMMIT absent for the tail)."""

    pages: List[Tuple[int, bytes, bytes]] = field(default_factory=list)
    catalog_patch: Optional[Dict[str, object]] = None
    ops: List[Dict[str, object]] = field(default_factory=list)

    @property
    def committed(self) -> bool:
        return self.catalog_patch is not None


@dataclass
class RecoveryResult:
    """What a recovery pass did to the page file."""

    batches_replayed: int = 0
    pages_replayed: int = 0
    batches_rolled_back: int = 0
    pages_rolled_back: int = 0
    catalog_patch: Optional[Dict[str, object]] = None

    @property
    def acted(self) -> bool:
        return bool(self.batches_replayed or self.batches_rolled_back)


class WriteAheadLog:
    """Append-only, CRC-guarded log of page-level update batches."""

    def __init__(self, path: str, fault_plan: Optional[FaultPlan] = None):
        self.path = path
        self.fault_plan = fault_plan
        self._in_batch = False
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        # Unbuffered: after a simulated crash the file holds exactly the
        # bytes that were written, with no Python-level buffer to leak.
        self._file = open(path, "ab", buffering=0)
        if fresh:
            self._file.write(MAGIC)
            self._file.flush()
            os.fsync(self._file.fileno())

    # -- batch protocol --------------------------------------------------------

    @property
    def in_batch(self) -> bool:
        return self._in_batch

    def begin(self) -> None:
        """Open an update batch."""
        if self._in_batch:
            raise WALError("a WAL batch is already open")
        self._in_batch = True
        self._append(REC_BEGIN, b"")

    def log_page_write(self, page_id: int, before: bytes, after: bytes) -> None:
        """Log one physiological page record and force it to disk.

        ``before`` and ``after`` are full raw page images (trailer
        included). Must precede the data-page write it covers.
        """
        if not self._in_batch:
            raise WALError("log_page_write outside a WAL batch")
        if len(before) != len(after):
            raise WALError("before/after images differ in size")
        payload = _PAGE_PREFIX.pack(page_id, len(after)) + before + after
        self._append(REC_PAGE, payload)
        self.sync()

    def abort(self) -> None:
        """Drop the open batch marker (the log keeps the partial records).

        Recovery treats the commit-less records as an uncommitted tail
        and rolls their before-images back at the next open.
        """
        self._in_batch = False

    def commit(
        self,
        catalog_patch: Dict[str, object],
        ops: Optional[List[Dict[str, object]]] = None,
    ) -> None:
        """Close the batch: append COMMIT with the catalog patch, fsync."""
        if not self._in_batch:
            raise WALError("commit outside a WAL batch")
        payload = json.dumps(
            {"catalog": catalog_patch, "ops": ops or []}
        ).encode("utf-8")
        self._append(REC_COMMIT, payload)
        self.sync()
        self._in_batch = False

    # -- file plumbing ---------------------------------------------------------

    def _append(self, rtype: int, payload: bytes) -> None:
        blob = _RECORD.pack(rtype, len(payload), _record_crc(rtype, payload)) + payload
        faulted_write(self.fault_plan, self._file.write, blob)

    def sync(self) -> None:
        """fsync the log (subject to the fault plan's sync faults)."""
        if self.fault_plan is not None and not self.fault_plan.on_sync():
            return
        self._file.flush()
        os.fsync(self._file.fileno())

    def truncate(self) -> None:
        """Checkpoint: atomically reset the log to just its magic header."""
        self._file.close()
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(MAGIC)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        _fsync_dir(self.path)
        self._file = open(self.path, "ab", buffering=0)

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading ---------------------------------------------------------------

    @staticmethod
    def scan(path: str) -> List[WALBatch]:
        """Parse the log into batches, discarding any torn tail.

        The last batch may be uncommitted (``committed == False``). A
        record that fails its CRC, or a truncated record, ends the scan:
        everything from there on is treated as never written.
        """
        with open(path, "rb") as handle:
            blob = handle.read()
        if len(blob) < len(MAGIC):
            return []
        if blob[: len(MAGIC)] != MAGIC:
            raise WALError(f"{path}: bad WAL magic")
        batches: List[WALBatch] = []
        current: Optional[WALBatch] = None
        offset = len(MAGIC)
        while offset + _RECORD.size <= len(blob):
            rtype, length, crc = _RECORD.unpack_from(blob, offset)
            start = offset + _RECORD.size
            payload = blob[start : start + length]
            if len(payload) != length or _record_crc(rtype, payload) != crc:
                break  # torn tail: discard this record and everything after
            offset = start + length
            if rtype == REC_BEGIN:
                current = WALBatch()
                batches.append(current)
            elif rtype == REC_PAGE:
                if current is None or current.committed:
                    break  # stray record: treat as garbage tail
                page_id, page_size = _PAGE_PREFIX.unpack_from(payload, 0)
                images = payload[_PAGE_PREFIX.size :]
                if len(images) != 2 * page_size:
                    break
                current.pages.append(
                    (page_id, images[:page_size], images[page_size:])
                )
            elif rtype == REC_COMMIT:
                if current is None or current.committed:
                    break
                body = json.loads(payload.decode("utf-8"))
                current.catalog_patch = body.get("catalog", {})
                current.ops = body.get("ops", [])
            else:
                break  # unknown record type: garbage tail
        return batches

    @staticmethod
    def recover(wal_path: str, page_path: str) -> RecoveryResult:
        """Replay committed batches and roll back the uncommitted tail.

        Applies page images directly to ``page_path`` (extending it if an
        image lies past the current end), fsyncs it, and returns the
        merged catalog patch of every committed batch. The caller is
        responsible for persisting the patched catalog and truncating
        the log — in that order, so a crash during recovery just means
        recovery runs again.
        """
        result = RecoveryResult()
        if not os.path.exists(wal_path):
            return result
        batches = WriteAheadLog.scan(wal_path)
        if not batches:
            return result
        patch: Dict[str, object] = {}
        with open(page_path, "r+b") as handle:
            for batch in batches:
                if batch.committed:
                    for page_id, _before, after in batch.pages:
                        handle.seek(page_id * len(after))
                        handle.write(after)
                        result.pages_replayed += 1
                    patch.update(batch.catalog_patch)
                    result.batches_replayed += 1
                else:
                    for page_id, before, _after in reversed(batch.pages):
                        handle.seek(page_id * len(before))
                        handle.write(before)
                        result.pages_rolled_back += 1
                    result.batches_rolled_back += 1
            handle.flush()
            os.fsync(handle.fileno())
        if patch:
            result.catalog_patch = patch
        return result
