"""Snapshot-isolated read views of a :class:`~repro.storage.nokstore.NoKStore`.

Concurrent serving (DESIGN.md §10) needs many readers to evaluate secure
queries against one resident store while Section 3.4 updates commit
underneath them. A :class:`StoreSnapshot` is the mechanism: an immutable
view of the store at one *epoch*, carrying its own frozen copies of the
mutable logical state — the document, the access labeling (cloned via
:meth:`~repro.labeling.base.AccessLabeling.clone`), and the page-header
table — plus a copy-on-write **page overlay** for physical bytes.

Lifecycle
---------
``store.snapshot()`` returns the current snapshot (shared by every reader
at that epoch; creation is lazy, so a store that is never read
concurrently pays nothing). When a writer commits an update, it runs
under the store's single-writer lock and, *before* rewriting any page,
copies that page's current bytes into the outgoing snapshot's overlay
("copy-on-write at update commit"). It then publishes a fresh snapshot
with a bumped epoch and links the old one to it. In-flight readers keep
the old snapshot: their labeling/header/document objects were never
mutated, and any page the writer touched resolves through the overlay
chain to its pre-update image — a reader never blocks on a writer and
never observes a half-applied update.

Page resolution for a snapshot at epoch *E*: walk the chain of successor
snapshots looking for an overlay entry (the bytes page *p* had when the
first post-*E* writer was about to change it); if no overlay holds *p*,
the store's live bytes are still exactly the epoch-*E* bytes and the read
goes through the shared latched buffer pool. Overlay pre-images are the
*stored* form of the page — compressed, on a v3 store — captured verbatim
and decoded on demand through the store's codec layer, so copy-on-write
cost is one page-size copy regardless of codec. A re-check after the live
read closes the race with a writer installing the overlay concurrently:
pre-images are always published *before* the page is rewritten, so "no
overlay after the read" proves the read saw epoch-*E* bytes.

The snapshot exposes the full reader API of :class:`NoKStore` (navigation
primitives, accessibility probes, the header page-skip test), so the
execution layer binds an :class:`~repro.exec.context.ExecutionContext` to
a snapshot exactly as it would to the store itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import PageCorruptionError, StorageError
from repro.labeling.base import AccessLabeling
from repro.storage.headers import PageHeaderTable
from repro.xmltree.document import NO_NODE, Document

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.codecs import PageColumns
    from repro.storage.nokstore import NoKStore


class StoreSnapshot:
    """An immutable, epoch-stamped read view of one :class:`NoKStore`.

    Duck-types the store's reader API so planners, operators and the NoK
    matcher run against it unchanged. All mutating store operations are
    absent by design — a snapshot cannot be written.
    """

    def __init__(
        self,
        store: "NoKStore",
        epoch: int,
        doc: Document,
        labeling: AccessLabeling,
        headers: PageHeaderTable,
        n_data_pages: int,
    ):
        self._store = store
        self.epoch = epoch
        self.doc = doc
        self.labeling = labeling
        self.headers = headers
        self._n_data_pages = n_data_pages
        self.entries_per_page = store.entries_per_page
        self.page_size = store.page_size
        #: pre-update page images, installed by the writer that
        #: superseded this snapshot, *before* it rewrote each page
        self._overlay: Dict[int, bytes] = {}
        self._overlay_decoded: Dict[int, "PageColumns"] = {}
        #: the snapshot that superseded this one (None while current)
        self._next: Optional["StoreSnapshot"] = None

    # -- identity ----------------------------------------------------------

    @property
    def dol(self) -> AccessLabeling:
        """Historical alias for :attr:`labeling` (any backend)."""
        return self.labeling

    @property
    def has_page_hints(self) -> bool:
        return self.labeling.has_page_hints

    @property
    def n_nodes(self) -> int:
        return len(self.doc)

    @property
    def n_pages(self) -> int:
        return self._n_data_pages

    @property
    def is_current(self) -> bool:
        """True while no update has committed since this snapshot."""
        return self._next is None

    @property
    def quarantined(self):
        """Corrupt-page set — physical state, shared with the store."""
        return self._store.quarantined

    @property
    def buffer(self):
        """The store's shared buffer pool (for I/O accounting)."""
        return self._store.buffer

    @property
    def pager(self):
        """The store's shared pager (for I/O accounting)."""
        return self._store.pager

    def quarantine(self, page_id: int) -> None:
        """Mark a page corrupt (degraded mode) — delegates to the store;
        corruption is a physical property, true in every epoch."""
        self._store.quarantine(page_id)

    # -- page access -------------------------------------------------------

    def _frozen_bytes(self, page_id: int) -> Optional[bytes]:
        """Pre-image bytes for this epoch, walking the successor chain."""
        snap: Optional[StoreSnapshot] = self
        while snap is not None:
            data = snap._overlay.get(page_id)
            if data is not None:
                return data
            snap = snap._next
        return None

    def _page(self, page_id: int) -> "PageColumns":
        if page_id in self._store.quarantined:
            raise PageCorruptionError(page_id, detail="page is quarantined")
        decoded = self._overlay_decoded.get(page_id)
        if decoded is not None:
            return decoded
        frozen = self._frozen_bytes(page_id)
        if frozen is None:
            decoded = self._store._page(page_id)
            # Re-check: a writer may have installed the pre-image while
            # we read. Writers install overlays strictly before
            # rewriting, so finding none now proves the live read
            # returned this epoch's bytes.
            frozen = self._frozen_bytes(page_id)
            if frozen is None:
                return decoded
        decoded = self._store._decode(frozen)
        # Benign race between readers: the decode is deterministic, so
        # concurrent inserts of the same page are interchangeable.
        self._overlay_decoded[page_id] = decoded
        return decoded

    def page_of(self, pos: int) -> int:
        """Page index holding document position ``pos``."""
        self._check(pos)
        return pos // self.entries_per_page

    def entry(self, pos: int):
        """The stored record for position ``pos`` at this epoch."""
        self._check(pos)
        page = self._page(pos // self.entries_per_page)
        return page.entries[pos % self.entries_per_page]

    def page_entries(self, page_id: int):
        """All decoded entries of one page at this epoch (one fetch)."""
        return self._page(page_id).entries

    def page_columns(self, page_id: int) -> "PageColumns":
        """The columnar decode of one page at this epoch."""
        return self._page(page_id)

    # -- navigation (the next-of-kin primitives) ---------------------------

    def tag_id(self, pos: int) -> int:
        return self.entry(pos).tag_id

    def tag_name(self, pos: int) -> str:
        return self.doc.tag_dict.name_of(self.entry(pos).tag_id)

    def text(self, pos: int) -> str:
        """Node text, from the snapshot's frozen document arrays.

        Value pages are not versioned: a structural update rebuilds the
        store's value heap in place, so a snapshot always serves texts
        from the document it captured.
        """
        self._check(pos)
        return self.doc.texts[pos]

    def attrs_of(self, pos: int):
        self._check(pos)
        return self.doc.attrs[pos]

    def first_child(self, pos: int) -> int:
        return pos + 1 if self.entry(pos).subtree > 1 else NO_NODE

    def following_sibling(self, pos: int) -> int:
        here = self.entry(pos)
        nxt = pos + here.subtree
        if nxt >= self.n_nodes:
            return NO_NODE
        return nxt if self.entry(nxt).depth == here.depth else NO_NODE

    def subtree_end(self, pos: int) -> int:
        return pos + self.entry(pos).subtree

    # -- access control (Section 3.3, frozen at this epoch) ----------------

    def access_code_at(self, pos: int) -> int:
        self._check(pos)
        page = self._page(pos // self.entries_per_page)
        return page.codes[pos % self.entries_per_page]

    def accessible(self, subject: int, pos: int) -> bool:
        if not self.has_page_hints:
            self._check(pos)
            return self.labeling.accessible(subject, pos)
        return self.labeling.codebook.accessible(self.access_code_at(pos), subject)

    def accessible_any(self, subjects, pos: int) -> bool:
        if not self.has_page_hints:
            self._check(pos)
            return self.labeling.accessible_any(subjects, pos)
        mask = self.labeling.codebook.decode(self.access_code_at(pos))
        return any(mask >> subject & 1 for subject in subjects)

    def page_fully_inaccessible(self, page_id: int, subject: int) -> bool:
        if not self.has_page_hints:
            return False
        return self.headers.page_fully_inaccessible(
            page_id, subject, self.labeling.codebook
        )

    def page_fully_inaccessible_any(self, page_id: int, subjects) -> bool:
        if not self.has_page_hints:
            return False
        return all(
            self.headers.page_fully_inaccessible(
                page_id, subject, self.labeling.codebook
            )
            for subject in subjects
        )

    def subtree_fully_inaccessible(self, pos: int, subject: int) -> bool:
        self._check(pos)
        first_page = pos // self.entries_per_page
        last = self.doc.subtree_end(pos) - 1
        last_page = last // self.entries_per_page
        return all(
            self.page_fully_inaccessible(page_id, subject)
            for page_id in range(first_page, last_page + 1)
        )

    # -- internals ---------------------------------------------------------

    def frozen_page_count(self) -> int:
        """Pages this snapshot holds as copy-on-write pre-images."""
        return len(self._overlay)

    def _check(self, pos: int) -> None:
        if not 0 <= pos < self.n_nodes:
            raise StorageError(f"position {pos} out of range")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "current" if self.is_current else "superseded"
        return (
            f"StoreSnapshot(epoch={self.epoch}, {state}, "
            f"n_nodes={self.n_nodes}, frozen_pages={len(self._overlay)})"
        )
