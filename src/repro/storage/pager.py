"""Fixed-size page storage with physical I/O accounting and checksums.

A :class:`Pager` exposes a flat array of pages backed by a *device*
(:mod:`repro.storage.device`): an mmap-backed file when the platform
allows it (zero-copy reads), positioned ``pread``/``pwrite`` I/O as the
file fallback, or an in-memory buffer for tests and benchmarks that
should not depend on filesystem speed. Every physical read and write is
counted; the buffer pool sits on top and adds caching; the codec layer
(:mod:`repro.storage.codecs`) interprets page interiors.

Page format (v2/v3)
-------------------
The last :data:`CHECKSUM_SIZE` bytes of every page are a trailer owned by
the pager: a little-endian CRC32 of the preceding payload, stamped on
every :meth:`Pager.write_page` and verified on every
:meth:`Pager.read_page`. Callers lay out their data in the first
``page_size - CHECKSUM_SIZE`` bytes (:attr:`Pager.usable_size`) and must
leave the trailer zeroed — the pager rejects writes that put data there,
so a consumer that miscounts its capacity fails loudly instead of being
silently truncated. A page that is entirely zero (payload and trailer) is
considered valid: it is the state of a freshly allocated, never-written
page. The pager never looks inside the payload, so the CRC covers
whatever form the codec layer stored — for compressed pages, the
*compressed* bytes, which is what makes WAL images and fault-injected
bit flips work identically on v2 and v3 stores.

A verification failure raises
:class:`~repro.errors.PageCorruptionError` carrying the page id and the
expected/actual digests. Maintenance tools (fsck, WAL recovery) that must
look at corrupt pages use :meth:`Pager.read_page_raw`, which skips both
verification and the read counter.

Zero-copy reads
---------------
:meth:`Pager.read_page_view` returns a verified *borrowed*
:class:`memoryview` of the page — a slice of the mmap on the mmap path,
no intermediate ``bytes``. The borrow rules from
:mod:`repro.storage.device` apply: decode immediately or copy; never let
the view outlive the call chain. :meth:`Pager.read_page` stays the
``bytes``-returning API boundary.
"""

from __future__ import annotations

import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import PageCorruptionError, StorageError
from repro.storage.device import open_device

DEFAULT_PAGE_SIZE = 4096  # the paper's experiments use 4 KB pages

#: Reserved trailer at the end of every page: CRC32 of the payload, u32 LE.
CHECKSUM_SIZE = 4
_CRC = struct.Struct("<I")


def page_checksum(payload) -> int:
    """CRC32 digest of a page payload (the page minus its trailer)."""
    return zlib.crc32(payload) & 0xFFFFFFFF


def stamp_page(data: bytes) -> bytes:
    """Return ``data`` with its trailer overwritten by the payload CRC."""
    payload = data[:-CHECKSUM_SIZE]
    return payload + _CRC.pack(page_checksum(payload))


def verify_page_bytes(data, page_id: int) -> None:
    """Raise :class:`PageCorruptionError` unless the trailer matches.

    An all-zero page (payload and trailer) passes: it is a freshly
    allocated page that was never written. Accepts ``bytes`` or a
    ``memoryview`` (the zero-copy path verifies in place).
    """
    payload = data[:-CHECKSUM_SIZE]
    (stored,) = _CRC.unpack_from(data, len(data) - CHECKSUM_SIZE)
    actual = page_checksum(payload)
    if stored == actual:
        return
    if stored == 0 and not any(payload):
        return
    raise PageCorruptionError(page_id, expected=stored, actual=actual)


@dataclass
class PagerStats:
    """Counters of physical page operations."""

    reads: int = 0
    writes: int = 0
    allocations: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.allocations = 0


class Pager:
    """An array of fixed-size pages backed by a device."""

    def __init__(self, path: Optional[str] = None, page_size: int = DEFAULT_PAGE_SIZE):
        if page_size < 64:
            raise StorageError("page size must be at least 64 bytes")
        self.page_size = page_size
        self.path = path
        self.stats = PagerStats()
        # Positioned device I/O is thread-safe on its own; the I/O lock
        # keeps the stats counters race-free and serializes the
        # fault-injection override points. It is the innermost storage
        # lock (the buffer-pool latch may be held when it is taken,
        # never the other way around).
        self._io_lock = threading.RLock()
        self._n_pages = 0
        self._device = open_device(path, create=True)

    @classmethod
    def open_existing(cls, path: str, page_size: int = DEFAULT_PAGE_SIZE) -> "Pager":
        """Attach to an existing page file without truncating it."""
        if page_size < 64:
            raise StorageError("page size must be at least 64 bytes")
        pager = cls.__new__(cls)
        pager.page_size = page_size
        pager.path = path
        pager.stats = PagerStats()
        pager._io_lock = threading.RLock()
        pager._device = open_device(path, create=False)
        try:
            size = pager._device.size
            if size % page_size:
                raise StorageError(
                    f"file size {size} is not a multiple of the page size {page_size}"
                )
        except BaseException:
            pager._device.close()
            raise
        pager._n_pages = size // page_size
        return pager

    # -- lifecycle -------------------------------------------------------------

    @property
    def _file(self):
        """The backing file object, ``None`` for in-memory pagers.

        Kept as an attribute-shaped accessor so crash harnesses can
        sever the handle exactly as they did before the device layer.
        """
        return self._device.file

    @property
    def device(self):
        """The raw device under this pager (bottom of the stack)."""
        return self._device

    def close(self) -> None:
        """Flush and release the backing device, if file-backed."""
        if self.path is not None:
            self._device.close()

    @property
    def closed(self) -> bool:
        """True once a file-backed pager has released its handle."""
        return self.path is not None and self._device.closed

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- operations ---------------------------------------------------------------

    @property
    def n_pages(self) -> int:
        """Number of allocated pages."""
        return self._n_pages

    @property
    def usable_size(self) -> int:
        """Bytes per page available to callers (page size minus trailer)."""
        return self.page_size - CHECKSUM_SIZE

    def allocate(self) -> int:
        """Allocate a zeroed page at the end; returns its page id."""
        with self._io_lock:
            page_id = self._n_pages
            self._n_pages += 1
            self.stats.allocations += 1
            if self.path is None:
                self._device.extend(self.page_size)
            else:
                self._write_raw(page_id * self.page_size, bytes(self.page_size))
            return page_id

    def read_page(self, page_id: int) -> bytes:
        """Physically read one page, verifying its checksum trailer.

        This is the ``bytes``-returning API boundary; internal callers
        that can honor the borrow rules use :meth:`read_page_view`.
        """
        return bytes(self.read_page_view(page_id))

    def read_page_view(self, page_id: int) -> Union[bytes, memoryview]:
        """Verified zero-copy read: a borrowed view of the page bytes.

        On the mmap path this is a :class:`memoryview` slice of the map;
        decode it immediately or copy — it must not outlive the call
        chain (see :mod:`repro.storage.device`).
        """
        with self._io_lock:
            self._check(page_id)
            self.stats.reads += 1
            data = self._read_view(page_id * self.page_size, self.page_size)
        if len(data) != self.page_size:
            raise StorageError(f"short read on page {page_id}")
        verify_page_bytes(data, page_id)
        return data

    def read_page_raw(self, page_id: int) -> bytes:
        """Read one page without checksum verification or I/O accounting.

        The maintenance path: fsck reports on corrupt pages instead of
        refusing to look at them, and WAL logging captures before-images
        exactly as stored.
        """
        with self._io_lock:
            self._check(page_id)
            data = self._read_raw(page_id * self.page_size, self.page_size)
        if len(data) != self.page_size:
            raise StorageError(f"short read on page {page_id}")
        return bytes(data)

    def write_page(self, page_id: int, data: bytes) -> None:
        """Physically write one page, stamping the checksum trailer."""
        if len(data) != self.page_size:
            raise StorageError(
                f"page data must be exactly {self.page_size} bytes, got {len(data)}"
            )
        if any(data[-CHECKSUM_SIZE:]):
            raise StorageError(
                f"page {page_id}: the last {CHECKSUM_SIZE} bytes are the "
                "checksum trailer and must be zero on write"
            )
        with self._io_lock:
            self._check(page_id)
            self.stats.writes += 1
            self._write_raw(page_id * self.page_size, stamp_page(data))

    def write_page_raw(self, page_id: int, data: bytes) -> None:
        """Write pre-stamped page bytes verbatim (WAL recovery images)."""
        if len(data) != self.page_size:
            raise StorageError(
                f"page data must be exactly {self.page_size} bytes, got {len(data)}"
            )
        with self._io_lock:
            self._check(page_id)
            self.stats.writes += 1
            self._write_raw(page_id * self.page_size, data)

    def sync(self) -> None:
        """Force file contents to stable storage."""
        with self._io_lock:
            if self.path is not None:
                self._device.sync()

    # -- raw byte I/O (the override point for fault injection) ----------------

    def _read_raw(self, offset: int, length: int) -> bytes:
        return bytes(self._device.read(offset, length))

    def _read_view(self, offset: int, length: int):
        # Honor fault-injection subclasses: when _read_raw is overridden,
        # every read must pass through it so injected bit flips land on
        # the zero-copy path too.
        if type(self)._read_raw is not Pager._read_raw:
            return self._read_raw(offset, length)
        return self._device.read(offset, length)

    def _write_raw(self, offset: int, payload: bytes) -> None:
        self._device.write(offset, payload)

    def _check(self, page_id: int) -> None:
        if not 0 <= page_id < self._n_pages:
            raise StorageError(f"page id {page_id} out of range")
