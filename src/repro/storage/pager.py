"""Fixed-size page storage with physical I/O accounting.

A :class:`Pager` exposes a flat array of pages, backed either by a real
file on disk or by an in-memory buffer (useful for tests and benchmarks
that should not depend on filesystem speed). Every physical read and write
is counted; the buffer pool sits on top and adds caching.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import StorageError

DEFAULT_PAGE_SIZE = 4096  # the paper's experiments use 4 KB pages


@dataclass
class PagerStats:
    """Counters of physical page operations."""

    reads: int = 0
    writes: int = 0
    allocations: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.allocations = 0


class Pager:
    """An array of fixed-size pages backed by a file or by memory."""

    def __init__(self, path: Optional[str] = None, page_size: int = DEFAULT_PAGE_SIZE):
        if page_size < 64:
            raise StorageError("page size must be at least 64 bytes")
        self.page_size = page_size
        self.path = path
        self.stats = PagerStats()
        self._n_pages = 0
        self._file = None
        self._memory: Optional[bytearray] = None
        if path is None:
            self._memory = bytearray()
        else:
            self._file = open(path, "w+b")

    @classmethod
    def open_existing(cls, path: str, page_size: int = DEFAULT_PAGE_SIZE) -> "Pager":
        """Attach to an existing page file without truncating it."""
        pager = cls.__new__(cls)
        if page_size < 64:
            raise StorageError("page size must be at least 64 bytes")
        pager.page_size = page_size
        pager.path = path
        pager.stats = PagerStats()
        pager._memory = None
        pager._file = open(path, "r+b")
        pager._file.seek(0, os.SEEK_END)
        size = pager._file.tell()
        if size % page_size:
            raise StorageError(
                f"file size {size} is not a multiple of the page size {page_size}"
            )
        pager._n_pages = size // page_size
        return pager

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Flush and release the backing file, if any."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- operations ---------------------------------------------------------------

    @property
    def n_pages(self) -> int:
        """Number of allocated pages."""
        return self._n_pages

    def allocate(self) -> int:
        """Allocate a zeroed page at the end; returns its page id."""
        page_id = self._n_pages
        self._n_pages += 1
        self.stats.allocations += 1
        zero = bytes(self.page_size)
        if self._memory is not None:
            self._memory.extend(zero)
        else:
            assert self._file is not None
            self._file.seek(page_id * self.page_size)
            self._file.write(zero)
        return page_id

    def read_page(self, page_id: int) -> bytes:
        """Physically read one page."""
        self._check(page_id)
        self.stats.reads += 1
        offset = page_id * self.page_size
        if self._memory is not None:
            return bytes(self._memory[offset : offset + self.page_size])
        assert self._file is not None
        self._file.seek(offset)
        data = self._file.read(self.page_size)
        if len(data) != self.page_size:
            raise StorageError(f"short read on page {page_id}")
        return data

    def write_page(self, page_id: int, data: bytes) -> None:
        """Physically write one page."""
        self._check(page_id)
        if len(data) != self.page_size:
            raise StorageError(
                f"page data must be exactly {self.page_size} bytes, got {len(data)}"
            )
        self.stats.writes += 1
        offset = page_id * self.page_size
        if self._memory is not None:
            self._memory[offset : offset + self.page_size] = data
        else:
            assert self._file is not None
            self._file.seek(offset)
            self._file.write(data)

    def sync(self) -> None:
        """Force file contents to stable storage."""
        if self._file is not None:
            self._file.flush()
            os.fsync(self._file.fileno())

    def _check(self, page_id: int) -> None:
        if not 0 <= page_id < self._n_pages:
            raise StorageError(f"page id {page_id} out of range")
