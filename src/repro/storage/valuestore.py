"""Paged storage for node values (text content).

The NoK scheme stores "the structure of the data tree ... separately from
the node values" (Section 3.1). The structure pages are handled by
:class:`~repro.storage.nokstore.NoKStore`; this module provides the value
side: UTF-8 records packed into pages in document order, addressed through
an in-memory slot table, read through a buffer pool so value accesses are
I/O-accounted like everything else.

Document order means value locality mirrors structural locality: the
values touched by one NoK subtree match typically share a page.

Value-container compression
---------------------------
This is the *content* half of the Leighton–Barbosa split (the structure
half lives in :mod:`repro.storage.codecs`): with ``codec="zlib"`` each
value page body is DEFLATE-compressed as a whole — text compresses well
and is decoded at page granularity into a
:class:`~repro.storage.pagecache.DecodedPageCache`, so hot value reads
pay the inflate once. A page whose compressed form would expand falls
back to raw bytes, recorded in the page's one-byte codec prefix.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence, Tuple

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.codecs import CODEC_NONE, CODEC_ZLIB, decode_container, encode_container
from repro.storage.pagecache import DecodedPageCache
from repro.storage.pager import DEFAULT_PAGE_SIZE, Pager

#: per-page prefix on compressed value pages: codec id (u8), blob length (u32)
_VALUE_PAGE_HEADER = struct.Struct("<BI")


class ValueStore:
    """Append-only paged heap of per-node text values."""

    def __init__(
        self,
        texts: Sequence[str],
        path: Optional[str] = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_capacity: int = 16,
        codec: Optional[str] = None,
    ):
        if codec not in (None, "none", "zlib"):
            raise StorageError(f"unknown value codec {codec!r}")
        self.codec = None if codec in (None, "none") else codec
        self.pager = Pager(path, page_size)
        self.buffer = BufferPool(self.pager, buffer_capacity)
        self.page_size = page_size
        #: records must leave the pager's checksum trailer untouched; a
        #: compressed heap also reserves the per-page codec prefix (its
        #: raw fallback must always fit)
        self.capacity = self.pager.usable_size - (
            _VALUE_PAGE_HEADER.size if self.codec else 0
        )
        # byte-budgeted like the node-page cache: hold roughly as many
        # decoded value pages as the buffer pool holds raw frames
        self._decoded = DecodedPageCache(
            capacity_bytes=max(buffer_capacity, 16) * page_size
        )
        #: per position: (page id, offset, byte length); (-1, 0, 0) = empty
        self._slots: List[Tuple[int, int, int]] = []
        self._build(texts)

    def _build(self, texts: Sequence[str]) -> None:
        current = bytearray()
        page_id = self.pager.allocate()
        for text in texts:
            raw = text.encode("utf-8")
            if len(raw) > self.capacity:
                raise StorageError(
                    f"value of {len(raw)} bytes exceeds the page capacity"
                )
            if not raw:
                self._slots.append((-1, 0, 0))
                continue
            if len(current) + len(raw) > self.capacity:
                self._write_value_page(page_id, current)
                page_id = self.pager.allocate()
                current = bytearray()
            self._slots.append((page_id, len(current), len(raw)))
            current.extend(raw)
        self._write_value_page(page_id, current)
        self.pager.stats.reset()

    def _write_value_page(self, page_id: int, current: bytearray) -> None:
        raw = bytes(current)
        if self.codec is None:
            self.pager.write_page(page_id, raw + bytes(self.page_size - len(raw)))
            return
        codec_id, blob = CODEC_ZLIB, encode_container(CODEC_ZLIB, raw)
        if len(blob) >= len(raw):
            codec_id, blob = CODEC_NONE, raw
        body = _VALUE_PAGE_HEADER.pack(codec_id, len(blob)) + blob
        self.pager.write_page(page_id, body + bytes(self.page_size - len(body)))

    def _page_bytes(self, page_id: int) -> bytes:
        """Logical (decoded) bytes of one value page."""
        if self.codec is None:
            return self.buffer.get(page_id)
        cached = self._decoded.get(page_id)
        if cached is not None:
            return cached
        data = self.buffer.get(page_id)
        codec_id, blob_len = _VALUE_PAGE_HEADER.unpack_from(data, 0)
        start = _VALUE_PAGE_HEADER.size
        decoded = decode_container(codec_id, data[start : start + blob_len])
        self._decoded.put(page_id, decoded)
        return decoded

    def text(self, pos: int) -> str:
        """The text value of the node at document position ``pos``."""
        if not 0 <= pos < len(self._slots):
            raise StorageError(f"position {pos} out of range")
        page_id, offset, length = self._slots[pos]
        if page_id == -1:
            return ""
        data = self._page_bytes(page_id)
        return data[offset : offset + length].decode("utf-8")

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def n_pages(self) -> int:
        return self.pager.n_pages

    def slot_table_bytes(self) -> int:
        """In-memory footprint of the slot table (3 ints per node)."""
        return len(self._slots) * 12

    def reset_io_stats(self) -> None:
        self.pager.stats.reset()
        self.buffer.stats.reset()

    def close(self) -> None:
        self.buffer.flush_all()
        self.pager.close()

    def __enter__(self) -> "ValueStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
