"""Paged storage for node values (text content).

The NoK scheme stores "the structure of the data tree ... separately from
the node values" (Section 3.1). The structure pages are handled by
:class:`~repro.storage.nokstore.NoKStore`; this module provides the value
side: UTF-8 records packed into pages in document order, addressed through
an in-memory slot table, read through a buffer pool so value accesses are
I/O-accounted like everything else.

Document order means value locality mirrors structural locality: the
values touched by one NoK subtree match typically share a page.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.pager import DEFAULT_PAGE_SIZE, Pager


class ValueStore:
    """Append-only paged heap of per-node text values."""

    def __init__(
        self,
        texts: Sequence[str],
        path: Optional[str] = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_capacity: int = 16,
    ):
        self.pager = Pager(path, page_size)
        self.buffer = BufferPool(self.pager, buffer_capacity)
        self.page_size = page_size
        #: records must leave the pager's checksum trailer untouched
        self.capacity = self.pager.usable_size
        #: per position: (page id, offset, byte length); (-1, 0, 0) = empty
        self._slots: List[Tuple[int, int, int]] = []
        self._build(texts)

    def _build(self, texts: Sequence[str]) -> None:
        current = bytearray()
        page_id = self.pager.allocate()
        for text in texts:
            raw = text.encode("utf-8")
            if len(raw) > self.capacity:
                raise StorageError(
                    f"value of {len(raw)} bytes exceeds the page capacity"
                )
            if not raw:
                self._slots.append((-1, 0, 0))
                continue
            if len(current) + len(raw) > self.capacity:
                self.pager.write_page(page_id, bytes(current) + bytes(self.page_size - len(current)))
                page_id = self.pager.allocate()
                current = bytearray()
            self._slots.append((page_id, len(current), len(raw)))
            current.extend(raw)
        self.pager.write_page(
            page_id, bytes(current) + bytes(self.page_size - len(current))
        )
        self.pager.stats.reset()

    def text(self, pos: int) -> str:
        """The text value of the node at document position ``pos``."""
        if not 0 <= pos < len(self._slots):
            raise StorageError(f"position {pos} out of range")
        page_id, offset, length = self._slots[pos]
        if page_id == -1:
            return ""
        data = self.buffer.get(page_id)
        return data[offset : offset + length].decode("utf-8")

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def n_pages(self) -> int:
        return self.pager.n_pages

    def slot_table_bytes(self) -> int:
        """In-memory footprint of the slot table (3 ints per node)."""
        return len(self._slots) * 12

    def reset_io_stats(self) -> None:
        self.pager.stats.reset()
        self.buffer.stats.reset()

    def close(self) -> None:
        self.buffer.flush_all()
        self.pager.close()

    def __enter__(self) -> "ValueStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
