"""Raw page devices: the bottom layer of the storage stack.

The :class:`~repro.storage.pager.Pager` used to own a file handle (or a
``bytearray``) directly; this module extracts that into a *device* with
one job — move raw bytes at absolute offsets — so the read path can be
zero-copy where the platform allows it:

- :class:`MmapDevice` maps the page file with ``mmap`` and serves reads
  as :class:`memoryview` slices of the mapping: no intermediate
  ``bytes`` object, no copy until a caller explicitly materializes one.
  Writes go through ``os.pwrite`` on the same descriptor; the mapping is
  ``MAP_SHARED``, so written bytes are immediately visible to readers.
  File growth remaps lazily (a mapping cannot cover bytes past the size
  it was created at).
- :class:`FileDevice` is the portable fallback: ``os.pread`` /
  ``os.pwrite``, both thread-safe without seeking (the historical
  seek+read pair required the pager's I/O lock for *correctness*; with
  positioned I/O the lock only guards the counters).
- :class:`MemoryDevice` backs tests and benchmarks that must not depend
  on filesystem speed; reads are memoryview slices of the buffer.

Devices return *borrowed* views: callers either decode them immediately
or copy at their API boundary (``Pager.read_page`` returns ``bytes``;
the buffer pool copies into its mutable frame). No view may outlive the
call chain that produced it — that is what lets ``close()`` unmap.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.errors import StorageError

try:  # pragma: no cover - import guard exercised only on exotic platforms
    import mmap as _mmap
except ImportError:  # pragma: no cover
    _mmap = None

Readable = Union[bytes, memoryview]


class MemoryDevice:
    """An in-memory byte array posing as a page file."""

    def __init__(self) -> None:
        self._buf = bytearray()
        self.closed = False

    @property
    def size(self) -> int:
        return len(self._buf)

    def read(self, offset: int, length: int) -> Readable:
        return memoryview(self._buf)[offset : offset + length]

    def write(self, offset: int, payload: bytes) -> None:
        end = offset + len(payload)
        if end > len(self._buf):
            self._buf.extend(bytes(end - len(self._buf)))
        self._buf[offset:end] = payload

    def extend(self, n_bytes: int) -> None:
        self._buf.extend(bytes(n_bytes))

    def sync(self) -> None:
        pass

    def close(self) -> None:
        self.closed = True

    @property
    def file(self):
        return None


class FileDevice:
    """Positioned-I/O file device (``pread``/``pwrite``), the fallback."""

    def __init__(self, file) -> None:
        #: the underlying unbuffered file object (kept so crash harnesses
        #: can sever the handle exactly as they did pre-refactor)
        self.file = file
        self._fd = file.fileno()
        self.closed = False

    @property
    def size(self) -> int:
        return os.fstat(self._fd).st_size

    def read(self, offset: int, length: int) -> Readable:
        return os.pread(self._fd, length, offset)

    def write(self, offset: int, payload: bytes) -> None:
        os.pwrite(self._fd, payload, offset)

    def extend(self, n_bytes: int) -> None:
        if n_bytes > 0:
            os.pwrite(self._fd, bytes(n_bytes), self.size)

    def sync(self) -> None:
        os.fsync(self._fd)

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.file.close()


class MmapDevice(FileDevice):
    """Zero-copy reads off a shared memory map of the page file.

    Reads inside the mapped extent are :class:`memoryview` slices of the
    map — no copy. Reads past it (a page written since the last remap)
    fall back to ``pread`` until :meth:`_remap` catches the map up.
    An empty file cannot be mapped, so the map stays ``None`` until the
    first byte exists.
    """

    def __init__(self, file) -> None:
        super().__init__(file)
        self._map = None
        self._map_size = 0
        self._remap()

    def _remap(self) -> None:
        size = os.fstat(self._fd).st_size
        if size == self._map_size and (self._map is not None or size == 0):
            return
        if self._map is not None:
            try:
                self._map.close()
            except BufferError:  # pragma: no cover - a borrowed view escaped
                # Leave the old map alive (the OS reclaims it at exit)
                # rather than corrupt whoever still holds a slice.
                pass
            self._map = None
            self._map_size = 0
        if size > 0:
            self._map = _mmap.mmap(self._fd, size, access=_mmap.ACCESS_WRITE)
            self._map_size = size

    def read(self, offset: int, length: int) -> Readable:
        end = offset + length
        if end > self._map_size:
            self._remap()
        if self._map is not None and end <= self._map_size:
            return memoryview(self._map)[offset:end]
        return os.pread(self._fd, length, offset)

    def write(self, offset: int, payload: bytes) -> None:
        # pwrite + MAP_SHARED keeps the mapping coherent; writes past the
        # mapped extent are picked up by the next read's lazy remap.
        os.pwrite(self._fd, payload, offset)

    def sync(self) -> None:
        if self._map is not None:
            self._map.flush()
        os.fsync(self._fd)

    def close(self) -> None:
        if self.closed:
            return
        if self._map is not None:
            try:
                self._map.close()
            except BufferError:  # pragma: no cover - a borrowed view escaped
                pass
            self._map = None
            self._map_size = 0
        super().close()


def open_device(
    path: Optional[str], create: bool, use_mmap: bool = True
) -> "MemoryDevice | FileDevice":
    """Open the best available device for ``path``.

    ``path=None`` yields a :class:`MemoryDevice`. For files the order is
    mmap first (zero-copy reads), positioned I/O as the fallback —
    either because the platform has no usable ``mmap`` or because
    mapping the file failed.
    """
    if path is None:
        return MemoryDevice()
    mode = "w+b" if create else "r+b"
    # Unbuffered: a crash (simulated or real) leaves the file with
    # exactly the writes that were issued, nothing half-buffered.
    file = open(path, mode, buffering=0)
    try:
        if use_mmap and _mmap is not None:
            try:
                return MmapDevice(file)
            except (OSError, ValueError):  # pragma: no cover - mmap refused
                pass
        return FileDevice(file)
    except BaseException:
        file.close()
        raise


__all__ = [
    "MemoryDevice",
    "FileDevice",
    "MmapDevice",
    "open_device",
    "StorageError",
]
