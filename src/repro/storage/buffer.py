"""Latched LRU buffer pool over a :class:`~repro.storage.pager.Pager`.

The pool serves page reads out of memory when possible and tracks both
logical accesses and physical I/O, so experiments can verify claims like
"accessibility checks require no additional I/O" and "inaccessible pages
are never read".

Concurrency
-----------
The pool is safe for many threads: every public operation runs under a
single pool-level **latch** (an :class:`threading.RLock`), and frames can
be **pinned** so that eviction never races a reader that is still using a
page. All :class:`BufferStats` counters are mutated only while the latch
is held, which makes them race-free; ``latch_contention`` counts how
often a thread found the latch already taken (the pool's contention
metric, exported by the serving layer).

Latch ordering (see DESIGN.md §10): the pool latch is the *innermost*
lock of the storage stack — no code may acquire the store writer lock or
any other lock while holding it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import StorageError
from repro.storage.pager import Pager, stamp_page


@dataclass
class BufferStats:
    """Counters of buffer pool activity.

    All fields are updated under the pool latch only, so concurrent
    readers never lose increments. ``latch_contention`` counts latch
    acquisitions that had to wait because another thread held it.
    """

    logical_reads: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writes: int = 0
    latch_contention: int = 0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.logical_reads if self.logical_reads else 0.0

    def reset(self) -> None:
        """Zero every counter.

        Contract: this resets *measurement* state only — it never touches
        frames, dirty flags, or pins, so no in-flight dirty-page
        accounting is lost (a dirty frame stays dirty and will still be
        written back; only the ``dirty_writes`` tally restarts from zero).
        When the pool is shared between threads, call
        :meth:`BufferPool.reset_stats` instead so the reset runs under
        the latch and cannot interleave with a concurrent increment.
        """
        self.logical_reads = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_writes = 0
        self.latch_contention = 0

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy of the counters (for metrics endpoints)."""
        return {
            "logical_reads": self.logical_reads,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "dirty_writes": self.dirty_writes,
            "latch_contention": self.latch_contention,
        }


class BufferPool:
    """A bounded, latched LRU cache of page frames with write-back.

    When a :class:`~repro.storage.wal.WriteAheadLog` is attached via
    ``wal`` and has an open batch, every physical write-back (explicit
    flush *and* dirty eviction) first logs a physiological record — the
    page's current on-disk bytes as the before-image, the stamped new
    bytes as the after-image — and fsyncs the log. This is the WAL rule:
    no data page reaches the file before the log can undo or redo it.

    Pinning: :meth:`pin` / :meth:`unpin` bracket multi-step uses of a
    resident frame. A pinned frame is never chosen as an eviction victim;
    if every frame is pinned the pool temporarily admits beyond
    ``capacity`` rather than deadlock (counted in ``pin_overflows`` via
    the eviction loop simply not finding a victim).
    """

    def __init__(
        self,
        pager: Pager,
        capacity: int = 64,
        on_evict: Optional[Callable[[int], None]] = None,
        wal=None,
    ):
        if capacity < 1:
            raise StorageError("buffer pool needs at least one frame")
        self.pager = pager
        self.capacity = capacity
        self.stats = BufferStats()
        self.on_evict = on_evict
        self.wal = wal
        self.latch = threading.RLock()
        self._frames: "OrderedDict[int, bytearray]" = OrderedDict()
        self._dirty: Dict[int, bool] = {}
        self._pins: Dict[int, int] = {}

    @contextmanager
    def latched(self):
        """Acquire the pool latch, counting contention race-free.

        The contention counter is bumped only after the latch is held, so
        the increment itself can never race. Re-entrant acquisition by
        the holding thread never counts as contention (RLock fast path).
        """
        contended = not self.latch.acquire(blocking=False)
        if contended:
            self.latch.acquire()
        try:
            if contended:
                self.stats.latch_contention += 1
            yield
        finally:
            self.latch.release()

    # -- pinning ---------------------------------------------------------------

    def pin(self, page_id: int) -> None:
        """Protect a resident frame from eviction until :meth:`unpin`.

        Pin counts nest; the frame must currently be resident.
        """
        with self.latched():
            if page_id not in self._frames:
                raise StorageError(f"cannot pin non-resident page {page_id}")
            self._pins[page_id] = self._pins.get(page_id, 0) + 1

    def unpin(self, page_id: int) -> None:
        """Release one pin on a frame."""
        with self.latched():
            count = self._pins.get(page_id, 0)
            if count <= 0:
                raise StorageError(f"page {page_id} is not pinned")
            if count == 1:
                del self._pins[page_id]
            else:
                self._pins[page_id] = count - 1

    def pin_count(self, page_id: int) -> int:
        """Current pin count of a frame (0 when unpinned or absent)."""
        with self.latched():
            return self._pins.get(page_id, 0)

    # -- reads -----------------------------------------------------------------

    def touch(self, page_id: int) -> bool:
        """Record a logical access; True iff the page was resident.

        Callers that keep their own decoded view of a resident page use
        this to account for the access without copying the frame bytes.
        A miss is *not* serviced — follow up with :meth:`fetch`.
        """
        with self.latched():
            self.stats.logical_reads += 1
            if page_id in self._frames:
                self.stats.hits += 1
                self._frames.move_to_end(page_id)
                return True
            self.stats.misses += 1
            return False

    def get(self, page_id: int) -> bytes:
        """Return page contents, reading from the pager on a miss."""
        with self.latched():
            self.stats.logical_reads += 1
            frame = self._frames.get(page_id)
            if frame is not None:
                self.stats.hits += 1
                self._frames.move_to_end(page_id)
                return bytes(frame)
            self.stats.misses += 1
            frame = bytearray(self.pager.read_page_view(page_id))
            self._admit(page_id, frame, dirty=False)
            return bytes(frame)

    def fetch(self, page_id: int) -> bytes:
        """Service a miss previously recorded by :meth:`touch`.

        Performs the physical read and admits the frame without counting a
        second logical access.
        """
        with self.latched():
            frame = self._frames.get(page_id)
            if frame is not None:
                return bytes(frame)
            frame = bytearray(self.pager.read_page_view(page_id))
            self._admit(page_id, frame, dirty=False)
            return bytes(frame)

    def view(self, page_id: int) -> memoryview:
        """Logical read returning a *borrowed* view of the frame bytes.

        One call combines the accounting of :meth:`touch` + :meth:`fetch`
        without materializing a ``bytes`` copy: a hit returns a view of
        the resident frame, a miss fills the frame straight from the
        pager's zero-copy read (mmap → frame, one copy total). The view
        aliases the mutable frame — callers must decode it *while still
        holding the latch* (the pool latch is re-entrant) and must not
        let it outlive the latched region, since a later ``put`` or
        eviction may rewrite the underlying bytearray.
        """
        with self.latched():
            self.stats.logical_reads += 1
            frame = self._frames.get(page_id)
            if frame is not None:
                self.stats.hits += 1
                self._frames.move_to_end(page_id)
                return memoryview(frame)
            self.stats.misses += 1
            frame = bytearray(self.pager.read_page_view(page_id))
            self._admit(page_id, frame, dirty=False)
            return memoryview(frame)

    def peek(self, page_id: int) -> Optional[bytes]:
        """Frame bytes if resident, else None — no stats, no I/O.

        Used by the snapshot layer to capture pre-images without
        perturbing the hit/miss accounting experiments rely on.
        """
        with self.latched():
            frame = self._frames.get(page_id)
            return bytes(frame) if frame is not None else None

    # -- writes ----------------------------------------------------------------

    def put(self, page_id: int, data: bytes) -> None:
        """Install new page contents in the pool (write-back later)."""
        with self.latched():
            if len(data) != self.pager.page_size:
                raise StorageError("page data has the wrong size")
            if page_id in self._frames:
                self._frames[page_id][:] = data
                self._frames.move_to_end(page_id)
                self._dirty[page_id] = True
            else:
                self._admit(page_id, bytearray(data), dirty=True)

    def flush(self, page_id: int) -> None:
        """Write one dirty page through to the pager."""
        with self.latched():
            if self._dirty.get(page_id):
                self._write_back(page_id, bytes(self._frames[page_id]))
                self._dirty[page_id] = False

    def flush_all(self) -> None:
        """Write all dirty pages through to the pager."""
        with self.latched():
            for page_id in list(self._frames):
                self.flush(page_id)

    def clear(self) -> None:
        """Flush and drop every frame (cold cache). Pins are released:
        this is a whole-pool reset, only valid when no reader is mid-use.
        """
        with self.latched():
            self.flush_all()
            if self.on_evict is not None:
                for page_id in self._frames:
                    self.on_evict(page_id)
            self._frames.clear()
            self._dirty.clear()
            self._pins.clear()

    def drop(self, page_id: int) -> None:
        """Flush (if dirty) and evict one frame so the next read hits disk.

        Used when un-quarantining a page: the probe must re-read and
        re-verify the on-disk bytes, not trust a stale frame. A no-op for
        non-resident pages; pinned frames are left alone (a reader still
        holds them, and their content is known-good by construction).
        """
        with self.latched():
            if page_id not in self._frames or self._pins.get(page_id, 0) > 0:
                return
            self.flush(page_id)
            if self.on_evict is not None:
                self.on_evict(page_id)
            del self._frames[page_id]
            self._dirty.pop(page_id, None)

    def reset_stats(self) -> None:
        """Zero the counters under the latch (see :meth:`BufferStats.reset`).

        Only measurement state is touched: frames, dirty flags and pins
        survive, so a reset issued mid-use never loses a pending dirty
        write-back — only its tally.
        """
        with self.latched():
            self.stats.reset()

    def resident(self, page_id: int) -> bool:
        """True if the page is currently cached (no I/O to read it)."""
        with self.latched():
            return page_id in self._frames

    def __len__(self) -> int:
        with self.latched():
            return len(self._frames)

    def _admit(self, page_id: int, frame: bytearray, dirty: bool) -> None:
        # Caller holds the latch. Pinned frames are never victims; when
        # everything is pinned the pool overflows its capacity rather
        # than evict a frame a reader still holds.
        while len(self._frames) >= self.capacity:
            victim = next(
                (pid for pid in self._frames if self._pins.get(pid, 0) == 0),
                None,
            )
            if victim is None:
                break
            victim_frame = self._frames.pop(victim)
            if self._dirty.pop(victim, False):
                self._write_back(victim, bytes(victim_frame))
            self.stats.evictions += 1
            if self.on_evict is not None:
                self.on_evict(victim)
        self._frames[page_id] = frame
        self._dirty[page_id] = dirty

    def _write_back(self, page_id: int, data: bytes) -> None:
        """One physical write-back, WAL-logged first when a batch is open."""
        if self.wal is not None and self.wal.in_batch:
            before = self.pager.read_page_raw(page_id)
            self.wal.log_page_write(page_id, before, stamp_page(data))
        self.pager.write_page(page_id, data)
        self.stats.dirty_writes += 1
