"""LRU buffer pool over a :class:`~repro.storage.pager.Pager`.

The pool serves page reads out of memory when possible and tracks both
logical accesses and physical I/O, so experiments can verify claims like
"accessibility checks require no additional I/O" and "inaccessible pages
are never read".
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import StorageError
from repro.storage.pager import Pager, stamp_page


@dataclass
class BufferStats:
    """Counters of buffer pool activity."""

    logical_reads: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writes: int = 0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.logical_reads if self.logical_reads else 0.0

    def reset(self) -> None:
        self.logical_reads = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_writes = 0


class BufferPool:
    """A bounded LRU cache of page frames with write-back on eviction.

    When a :class:`~repro.storage.wal.WriteAheadLog` is attached via
    ``wal`` and has an open batch, every physical write-back (explicit
    flush *and* dirty eviction) first logs a physiological record — the
    page's current on-disk bytes as the before-image, the stamped new
    bytes as the after-image — and fsyncs the log. This is the WAL rule:
    no data page reaches the file before the log can undo or redo it.
    """

    def __init__(
        self,
        pager: Pager,
        capacity: int = 64,
        on_evict: Optional[Callable[[int], None]] = None,
        wal=None,
    ):
        if capacity < 1:
            raise StorageError("buffer pool needs at least one frame")
        self.pager = pager
        self.capacity = capacity
        self.stats = BufferStats()
        self.on_evict = on_evict
        self.wal = wal
        self._frames: "OrderedDict[int, bytearray]" = OrderedDict()
        self._dirty: Dict[int, bool] = {}

    def touch(self, page_id: int) -> bool:
        """Record a logical access; True iff the page was resident.

        Callers that keep their own decoded view of a resident page use
        this to account for the access without copying the frame bytes.
        A miss is *not* serviced — follow up with :meth:`get`.
        """
        self.stats.logical_reads += 1
        if page_id in self._frames:
            self.stats.hits += 1
            self._frames.move_to_end(page_id)
            return True
        self.stats.misses += 1
        return False

    def get(self, page_id: int) -> bytes:
        """Return page contents, reading from the pager on a miss."""
        self.stats.logical_reads += 1
        frame = self._frames.get(page_id)
        if frame is not None:
            self.stats.hits += 1
            self._frames.move_to_end(page_id)
            return bytes(frame)
        self.stats.misses += 1
        data = self.pager.read_page(page_id)
        self._admit(page_id, bytearray(data), dirty=False)
        return data

    def fetch(self, page_id: int) -> bytes:
        """Service a miss previously recorded by :meth:`touch`.

        Performs the physical read and admits the frame without counting a
        second logical access.
        """
        frame = self._frames.get(page_id)
        if frame is not None:
            return bytes(frame)
        data = self.pager.read_page(page_id)
        self._admit(page_id, bytearray(data), dirty=False)
        return data

    def put(self, page_id: int, data: bytes) -> None:
        """Install new page contents in the pool (write-back later)."""
        if len(data) != self.pager.page_size:
            raise StorageError("page data has the wrong size")
        if page_id in self._frames:
            self._frames[page_id][:] = data
            self._frames.move_to_end(page_id)
            self._dirty[page_id] = True
        else:
            self._admit(page_id, bytearray(data), dirty=True)

    def flush(self, page_id: int) -> None:
        """Write one dirty page through to the pager."""
        if self._dirty.get(page_id):
            self._write_back(page_id, bytes(self._frames[page_id]))
            self._dirty[page_id] = False

    def flush_all(self) -> None:
        """Write all dirty pages through to the pager."""
        for page_id in list(self._frames):
            self.flush(page_id)

    def clear(self) -> None:
        """Flush and drop every frame (cold cache)."""
        self.flush_all()
        if self.on_evict is not None:
            for page_id in self._frames:
                self.on_evict(page_id)
        self._frames.clear()
        self._dirty.clear()

    def resident(self, page_id: int) -> bool:
        """True if the page is currently cached (no I/O to read it)."""
        return page_id in self._frames

    def __len__(self) -> int:
        return len(self._frames)

    def _admit(self, page_id: int, frame: bytearray, dirty: bool) -> None:
        while len(self._frames) >= self.capacity:
            victim, victim_frame = self._frames.popitem(last=False)
            if self._dirty.pop(victim, False):
                self._write_back(victim, bytes(victim_frame))
            self.stats.evictions += 1
            if self.on_evict is not None:
                self.on_evict(victim)
        self._frames[page_id] = frame
        self._dirty[page_id] = dirty

    def _write_back(self, page_id: int, data: bytes) -> None:
        """One physical write-back, WAL-logged first when a batch is open."""
        if self.wal is not None and self.wal.in_batch:
            before = self.pager.read_page_raw(page_id)
            self.wal.log_page_write(page_id, before, stamp_page(data))
        self.pager.write_page(page_id, data)
        self.stats.dirty_writes += 1
