"""Succinct document-order structure encoding.

The NoK storage scheme serializes the data tree by listing nodes in
document order with markup for subtree nesting; the paper's example is
``(a(b)(c)(d)(e(f)(g)(h(i)(j)(k)(l))))``, further compacted by dropping the
redundant open parentheses. This module provides:

- :func:`to_structure_string` / :func:`parse_structure_string` — the
  human-readable succinct form, used for validation and round-trip tests;
- :class:`NodeEntry` and its fixed-width binary codec — the per-node record
  actually stored in pages by :class:`~repro.storage.nokstore.NoKStore`
  (tag id, depth, subtree size, embedded access control code + transition
  flag).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import PageFormatError, StorageError
from repro.xmltree.document import Document, TagDictionary


def to_structure_string(doc: Document, compact: bool = False) -> str:
    """Serialize the document structure as a parenthesized tag string.

    ``compact=True`` drops the open parentheses (they are redundant given
    the tag names), matching the footnoted optimization in Section 3.1:
    ``a b) c) d) e f) g) h i) j) k) l)))))`` for the paper's example — we
    keep single spaces as tag delimiters.
    """
    parts: List[str] = []
    # Iterative preorder with explicit close markers, safe on deep documents.
    stack: List[Tuple[int, bool]] = [(0, False)]
    while stack:
        pos, closed = stack.pop()
        if closed:
            parts.append(")")
            continue
        if compact:
            parts.append(doc.tag_name(pos) + " ")
        else:
            parts.append("(" + doc.tag_name(pos))
        stack.append((pos, True))
        for child in reversed(list(doc.children(pos))):
            stack.append((child, False))
    return "".join(parts)


def parse_structure_string(text: str) -> Document:
    """Rebuild a (structure-only) document from the parenthesized form."""
    tags: List[int] = []
    parent: List[int] = []
    subtree: List[int] = []
    depth: List[int] = []
    tag_dict = TagDictionary()

    stack: List[int] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "(":
            j = i + 1
            while j < n and text[j] not in "()":
                j += 1
            name = text[i + 1 : j].strip()
            if not name:
                raise StorageError(f"missing tag name at offset {i}")
            if not stack and tags:
                raise StorageError(f"second root element at offset {i}")
            pos = len(tags)
            tags.append(tag_dict.intern(name))
            parent.append(stack[-1] if stack else -1)
            subtree.append(1)
            depth.append(len(stack))
            stack.append(pos)
            i = j
        elif ch == ")":
            if not stack:
                raise StorageError(f"unbalanced ')' at offset {i}")
            stack.pop()
            i += 1
        elif ch.isspace():
            i += 1
        else:
            raise StorageError(f"unexpected character {ch!r} at offset {i}")
    if stack:
        raise StorageError("unbalanced structure string: unclosed subtrees")
    if not tags:
        raise StorageError("empty structure string")

    for pos in range(len(tags) - 1, 0, -1):
        subtree[parent[pos]] += subtree[pos]
    texts = [""] * len(tags)
    return Document(tags, parent, subtree, depth, texts, tag_dict)


#: Binary layout of one node entry: tag id (u16), depth (u16), subtree size
#: (u32), access control code (u16), flags (u8, bit 0 = transition node),
#: one pad byte. Little-endian, 12 bytes.
_ENTRY = struct.Struct("<HHIHBx")
ENTRY_SIZE = _ENTRY.size
FLAG_TRANSITION = 0x01


@dataclass(frozen=True)
class NodeEntry:
    """One fixed-width node record as stored in a page."""

    tag_id: int
    depth: int
    subtree: int
    code: int
    is_transition: bool

    def pack(self) -> bytes:
        """Encode to the 12-byte on-page representation."""
        flags = FLAG_TRANSITION if self.is_transition else 0
        try:
            return _ENTRY.pack(self.tag_id, self.depth, self.subtree, self.code, flags)
        except struct.error as exc:
            raise PageFormatError(f"entry field out of range: {exc}") from exc

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "NodeEntry":
        """Decode from the on-page representation."""
        try:
            tag_id, depth, subtree, code, flags = _ENTRY.unpack_from(data, offset)
        except struct.error as exc:
            raise PageFormatError(f"truncated node entry: {exc}") from exc
        return cls(tag_id, depth, subtree, code, bool(flags & FLAG_TRANSITION))
