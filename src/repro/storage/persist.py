"""Persistence: save, recover, reopen and fsck a :class:`NoKStore`.

The page file already holds the document structure and the embedded DOL
transition codes; what it cannot hold is the in-memory state the paper
keeps alongside it — the codebook, the tag dictionary, and the NoK value
store (node texts). :func:`save_store` writes those to a JSON *catalog*
next to the page file; :func:`open_store` reads both back, reconstructing
the flattened document (parents from depths, a stack-based linear pass)
and the DOL (real transitions are entries whose code differs from the
running code — page-initial pseudo-transitions are filtered out) directly
from the on-disk pages.

The catalog carries a ``labeling`` backend tag (missing in pre-refactor
catalogs, which are all DOL — they load exactly as before, byte for
byte). A hint-free backend (``cam``, ``naive``) cannot round-trip through
page codes, so its state travels in the catalog's ``labeling_data``
payload and is rebuilt via the backend's ``from_catalog``. Passing
``labeling=`` to :func:`open_store` asserts the expected backend; a
mismatch raises :class:`ValueError` naming both.

Durability protocol
-------------------
``save_store`` is atomic (temp file + fsync + ``os.replace``) and acts as
the checkpoint: once the catalog durably reflects the pages, the
write-ahead log is truncated. ``open_store`` starts with a recovery pass
(:meth:`WriteAheadLog.recover`): committed update batches are replayed
onto the page file and their catalog patch folded into the catalog, an
uncommitted tail is rolled back — so the store observed after a crash is
exactly the pre- or post-update state, never a torn mixture. Recovery is
idempotent; a crash *during* recovery just means it runs again.

:func:`fsck_store` is the offline checker behind ``repro verify-store``:
checksums, catalog/page-file agreement, header-vs-entry agreement, and
transition-code sanity, reported without giving up at the first fault.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.dol.codebook import Codebook
from repro.dol.labeling import DOL
from repro.errors import PageCorruptionError, PageFormatError, StorageError
from repro.labeling.base import AccessLabeling
from repro.labeling.registry import get_backend
from repro.storage.codecs import CODEC_IDS, resolve_page_format
from repro.storage.faults import FaultInjectingPager, FaultPlan
from repro.storage.headers import PageHeader, PageHeaderTable
from repro.storage.nokstore import NoKStore, entries_per_page_for, wal_path_for
from repro.storage.pager import Pager, verify_page_bytes
from repro.storage.wal import RecoveryResult, WriteAheadLog, _fsync_dir
from repro.xmltree.document import NO_NODE, Document, TagDictionary

#: v2 adds the per-page CRC trailer and the WAL sidecar; v1 files predate
#: both and cannot be verified, so they are refused rather than guessed at.
CATALOG_VERSION = 2


def catalog_path_for(path: str) -> str:
    """Default sidecar catalog location for a page file."""
    return path + ".catalog.json"


def _write_json_atomic(path: str, payload: Dict[str, object]) -> None:
    """Write JSON so a crash leaves either the old file or the new one."""
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path)


def _catalog_from_store(store: NoKStore) -> Dict[str, object]:
    catalog = {"version": CATALOG_VERSION, "page_size": store.page_size}
    catalog.update(store.catalog_state())
    return catalog


def save_store(store: NoKStore, catalog_path: str = None) -> str:
    """Persist a file-backed store's in-memory state; returns the path.

    The sequence is the checkpoint protocol: data pages are flushed and
    fsynced, the catalog is replaced atomically, and only then is the WAL
    truncated — a crash at any point leaves a state `open_store` can
    recover.
    """
    if store.pager.path is None:
        raise StorageError("only file-backed stores can be saved")
    store.buffer.flush_all()
    store.pager.sync()

    catalog_path = catalog_path or catalog_path_for(store.pager.path)
    _write_json_atomic(catalog_path, _catalog_from_store(store))
    if store.wal is not None:
        store.wal.truncate()
    return catalog_path


def _load_catalog(path: str, catalog_path: str) -> Dict[str, object]:
    if not os.path.exists(catalog_path):
        raise StorageError(f"missing catalog {catalog_path}")
    with open(catalog_path, "r", encoding="utf-8") as handle:
        try:
            catalog = json.load(handle)
        except ValueError as exc:
            raise StorageError(f"catalog {catalog_path} is not valid JSON: {exc}")
    if catalog.get("version") != CATALOG_VERSION:
        raise StorageError(
            f"unsupported catalog version {catalog.get('version')!r} "
            f"(this build reads version {CATALOG_VERSION})"
        )
    return catalog


def _validate_catalog(catalog: Dict[str, object], path: str) -> None:
    """Cross-check the catalog against the actual page file."""
    page_size = catalog.get("page_size")
    if not isinstance(page_size, int) or page_size < 64:
        raise StorageError(f"catalog page_size {page_size!r} is not usable")
    if entries_per_page_for(page_size) < 1:
        raise StorageError(
            f"catalog page_size {page_size} cannot hold a single node entry"
        )
    for key in ("n_nodes", "n_pages", "n_subjects"):
        value = catalog.get(key)
        if not isinstance(value, int) or value < 0:
            raise StorageError(f"catalog field {key}={value!r} is not usable")
    if not os.path.exists(path):
        raise StorageError(f"missing page file {path}")
    size = os.path.getsize(path)
    if size % page_size:
        raise StorageError(
            f"page file size {size} is not a multiple of page_size {page_size}"
        )
    if size // page_size < catalog["n_pages"]:
        raise StorageError(
            f"page file holds {size // page_size} pages but the catalog "
            f"records {catalog['n_pages']}"
        )
    texts = catalog.get("texts")
    if not isinstance(texts, list) or len(texts) != catalog["n_nodes"]:
        raise StorageError("catalog texts do not match the node count")
    backend = catalog.get("labeling", "dol")
    if not isinstance(backend, str) or not backend:
        raise StorageError(f"catalog labeling tag {backend!r} is not usable")
    if backend != "dol" and "labeling_data" not in catalog:
        raise StorageError(
            f"catalog tagged with backend {backend!r} but holds no labeling_data"
        )
    codec = catalog.get("codec")
    if codec is not None:
        # v3 store: the codec negotiation tag must name known container
        # codecs and carry the density the build chose.
        if not isinstance(codec, dict):
            raise StorageError(f"catalog codec tag {codec!r} is not usable")
        for container in ("structure", "codes"):
            name = codec.get(container)
            if name not in CODEC_IDS:
                raise StorageError(
                    f"catalog codec tag names unknown {container} codec {name!r}"
                )
        per_page = catalog.get("entries_per_page")
        if not isinstance(per_page, int) or per_page < 1:
            raise StorageError(
                f"catalog entries_per_page {per_page!r} is not usable "
                "(required for compressed stores)"
            )


def _recover(path: str, catalog_path: str) -> RecoveryResult:
    """WAL recovery + checkpoint, run before the store is opened."""
    wal_path = wal_path_for(path)
    result = WriteAheadLog.recover(wal_path, path)
    if result.catalog_patch is not None:
        catalog = _load_catalog(path, catalog_path)
        catalog.update(result.catalog_patch)
        _write_json_atomic(catalog_path, catalog)
    if result.acted:
        with WriteAheadLog(wal_path) as wal:
            wal.truncate()
    return result


def open_store(
    path: str,
    catalog_path: str = None,
    buffer_capacity: int = 64,
    fault_plan: Optional[FaultPlan] = None,
    labeling: Optional[str] = None,
) -> NoKStore:
    """Reopen a saved store: recover the WAL, then rebuild from pages.

    ``labeling`` asserts the expected backend: when given and the catalog
    was written by a different backend, :class:`ValueError` names both.
    Catalogs with no backend tag predate the pluggable interface and are
    DOL by construction.

    ``fault_plan`` threads a :class:`FaultPlan` into the reopened pager
    and WAL (the crash-recovery harness); production callers leave it
    ``None``.
    """
    catalog_path = catalog_path or catalog_path_for(path)
    recovery = _recover(path, catalog_path)
    catalog = _load_catalog(path, catalog_path)
    _validate_catalog(catalog, path)

    backend = catalog.get("labeling", "dol")
    if labeling is not None and labeling != backend:
        raise ValueError(
            f"store at {path} was built with labeling backend {backend!r}, "
            f"but {labeling!r} was requested"
        )

    page_size = catalog["page_size"]
    n_nodes = catalog["n_nodes"]
    n_pages = catalog["n_pages"]
    codec = catalog.get("codec")
    page_format = resolve_page_format(codec)
    entries_per_page = catalog.get("entries_per_page") or entries_per_page_for(
        page_size
    )
    if fault_plan is not None:
        pager = FaultInjectingPager.open_existing(path, page_size, plan=fault_plan)
    else:
        pager = Pager.open_existing(path, page_size)

    wal: Optional[WriteAheadLog] = None
    try:
        # Rebuild the codebook (empty for hint-free backends).
        codebook = Codebook(catalog["n_subjects"])
        for mask_hex in catalog["codebook"]:
            codebook.encode(int(mask_hex, 16))

        # One pass over the pages: rebuild document arrays, headers, and
        # (for the DOL backend) the transition list from embedded codes.
        tag_dict = TagDictionary()
        for name in catalog["tags"]:
            tag_dict.intern(name)
        texts = list(catalog["texts"])

        tags: List[int] = []
        depth: List[int] = []
        subtree: List[int] = []
        parent: List[int] = []
        stack: List[int] = []  # positions of open ancestors
        headers = PageHeaderTable()
        positions: List[int] = []
        codes: List[int] = []
        running_code = None

        pos = 0
        for page_id in range(n_pages):
            data = pager.read_page_view(page_id)
            header, entries = page_format.decode_page(data)
            expected = PageHeader.expected_for(entries)
            if header != expected:
                raise StorageError(
                    f"page {page_id}: stored header {header} disagrees with "
                    f"its entries (implied {expected})"
                )
            headers.append(header)
            for entry in entries:
                tags.append(entry.tag_id)
                depth.append(entry.depth)
                subtree.append(entry.subtree)
                while len(stack) > entry.depth:
                    stack.pop()
                parent.append(stack[-1] if stack else NO_NODE)
                stack.append(pos)
                if entry.is_transition and entry.code != running_code:
                    positions.append(pos)
                    codes.append(entry.code)
                    running_code = entry.code
                pos += 1
        if pos != n_nodes:
            raise StorageError(
                f"pages hold {pos} entries but the catalog records {n_nodes}"
            )

        doc = Document(tags, parent, subtree, depth, texts, tag_dict)
        doc.validate()
        if backend == "dol":
            rebuilt: AccessLabeling = DOL(n_nodes, codebook)
            rebuilt.positions = positions
            rebuilt.codes = codes
            rebuilt.validate()
        else:
            # Hint-free backends: page codes are all zero; the labeling
            # state lives in the catalog payload instead.
            backend_cls = get_backend(backend)
            rebuilt = backend_cls.from_catalog(catalog["labeling_data"], doc)
            if rebuilt.n_nodes != n_nodes:
                raise StorageError(
                    f"catalog labeling_data covers {rebuilt.n_nodes} nodes "
                    f"but the catalog records {n_nodes}"
                )
            rebuilt.validate()

        pager.stats.reset()
        wal = WriteAheadLog(wal_path_for(path), fault_plan=fault_plan)
        # attach() validates too (labeling/document agreement) — it must
        # stay inside the guard or a failure leaks both descriptors.
        store = NoKStore.attach(
            doc,
            rebuilt,
            pager,
            headers,
            buffer_capacity,
            wal=wal,
            codec=codec,
            entries_per_page=entries_per_page,
        )
        # Stamp what recovery did so the serving layer's health model can
        # report a store that came up through WAL replay/rollback.
        store.last_recovery = {
            "acted": recovery.acted,
            "batches_replayed": recovery.batches_replayed,
            "pages_replayed": recovery.pages_replayed,
            "batches_rolled_back": recovery.batches_rolled_back,
            "pages_rolled_back": recovery.pages_rolled_back,
        }
        return store
    except BaseException:
        pager.close()
        if wal is not None:
            wal.close()
        raise


def fsck_store(path: str, catalog_path: str = None) -> List[str]:
    """Offline integrity check; returns human-readable findings.

    Unlike :func:`open_store`, which stops at the first problem, fsck
    keeps going and reports everything it can still reach: checksum
    failures per page, header/entry disagreement, entry-count drift
    against the catalog, transition codes outside the codebook, and a
    WAL left with pending batches. An empty list means a clean store.
    """
    return [f["message"] for f in fsck_report(path, catalog_path)["findings"]]


def fsck_report(path: str, catalog_path: str = None) -> Dict[str, object]:
    """Machine-readable fsck: the structured form behind :func:`fsck_store`.

    The report carries everything ``verify-store --json``, the CI chaos
    job, and the serving layer's health model need to act without string
    parsing::

        {"store": ..., "clean": bool, "checked_pages": N,
         "corrupt_pages": [ids...], "wal_pending_batches": N,
         "codec": tag-or-None, "physical_bytes": N, "logical_bytes": N,
         "containers": {"structure": {...}, "codes": {...}},
         "findings": [{"kind": ..., "page": id-or-None, "message": ...}]}

    Finding kinds: ``catalog`` (catalog unusable — nothing else was
    checkable), ``wal`` (pending or unreadable log), ``checksum``,
    ``header``, ``entry``, ``count``.

    The container block totals physical (as stored, post-codec) vs
    logical (decoded) bytes per container across every parseable page,
    so compression ratio is visible without a bench run.
    """
    catalog_path = catalog_path or catalog_path_for(path)
    findings: List[Dict[str, object]] = []
    report: Dict[str, object] = {
        "store": path,
        "catalog": catalog_path,
        "checked_pages": 0,
        "corrupt_pages": [],
        "wal_pending_batches": 0,
        "codec": None,
        "n_pages": 0,
        "physical_bytes": 0,
        "logical_bytes": 0,
        "containers": {
            "structure": {"physical_bytes": 0, "logical_bytes": 0, "codecs": []},
            "codes": {"physical_bytes": 0, "logical_bytes": 0, "codecs": []},
        },
        "findings": findings,
    }

    def finding(kind: str, message: str, page: Optional[int] = None) -> None:
        findings.append({"kind": kind, "page": page, "message": message})

    try:
        catalog = _load_catalog(path, catalog_path)
        _validate_catalog(catalog, path)
    except StorageError as exc:
        finding("catalog", str(exc))
        report["clean"] = False
        return report

    page_size = catalog["page_size"]
    n_pages = catalog["n_pages"]
    n_codes = len(catalog.get("codebook", []))
    per_page = catalog.get("entries_per_page") or entries_per_page_for(page_size)
    page_format = resolve_page_format(catalog.get("codec"))
    report["codec"] = catalog.get("codec")
    report["n_pages"] = n_pages
    report["physical_bytes"] = n_pages * page_size
    container_totals = report["containers"]

    wal_path = wal_path_for(path)
    if os.path.exists(wal_path):
        try:
            batches = WriteAheadLog.scan(wal_path)
        except StorageError as exc:
            finding("wal", str(exc))
            batches = []
        pending = [b for b in batches if b.pages or b.committed]
        if pending:
            report["wal_pending_batches"] = len(pending)
            raise_note = sum(1 for b in pending if not b.committed)
            finding(
                "wal",
                f"WAL holds {len(pending)} unapplied batch(es)"
                + (f", {raise_note} uncommitted" if raise_note else "")
                + " — open_store will recover them",
            )

    total_entries = 0
    unreadable_pages = 0
    with Pager.open_existing(path, page_size) as pager:
        for page_id in range(n_pages):
            data = pager.read_page_raw(page_id)
            try:
                verify_page_bytes(data, page_id)
            except PageCorruptionError as exc:
                finding("checksum", str(exc), page=page_id)
                report["corrupt_pages"].append(page_id)
                unreadable_pages += 1
                continue
            header = PageHeader.unpack(data)
            if header.n_entries > per_page:
                finding(
                    "header",
                    f"page {page_id}: header claims {header.n_entries} "
                    f"entries, capacity is {per_page}",
                    page=page_id,
                )
                report["corrupt_pages"].append(page_id)
                unreadable_pages += 1
                continue
            try:
                _header, entries = page_format.decode_page(data)
                per_container = page_format.container_report(data)
            except PageFormatError as exc:
                finding(
                    "entry",
                    f"page {page_id}: container decode failed: {exc}",
                    page=page_id,
                )
                report["corrupt_pages"].append(page_id)
                unreadable_pages += 1
                continue
            for container, sizes in per_container.items():
                totals = container_totals[container]
                totals["physical_bytes"] += sizes["physical"]
                totals["logical_bytes"] += sizes["logical"]
                if sizes["codec"] not in totals["codecs"]:
                    totals["codecs"].append(sizes["codec"])
            for index, entry in enumerate(entries):
                if entry.is_transition and entry.code >= max(n_codes, 1):
                    finding(
                        "entry",
                        f"page {page_id} entry {index}: transition code "
                        f"{entry.code} outside the codebook ({n_codes} codes)",
                        page=page_id,
                    )
            expected = PageHeader.expected_for(entries)
            if header != expected:
                finding(
                    "header",
                    f"page {page_id}: stored header {header} disagrees with "
                    f"its entries (implied {expected})",
                    page=page_id,
                )
            total_entries += len(entries)
    report["checked_pages"] = n_pages
    report["logical_bytes"] = sum(
        totals["logical_bytes"] for totals in container_totals.values()
    )
    # Count drift is only an independent finding when every page was
    # parseable — otherwise it is just a consequence of the pages above.
    if not unreadable_pages and total_entries != catalog["n_nodes"]:
        finding(
            "count",
            f"pages hold {total_entries} entries but the catalog records "
            f"{catalog['n_nodes']}",
        )
    report["clean"] = not findings
    return report
