"""Persistence: save and reopen a :class:`~repro.storage.nokstore.NoKStore`.

The page file already holds the document structure and the embedded DOL
transition codes; what it cannot hold is the in-memory state the paper
keeps alongside it — the codebook, the tag dictionary, and the NoK value
store (node texts). :func:`save_store` writes those to a JSON *catalog*
next to the page file; :func:`open_store` reads both back, reconstructing
the flattened document (parents from depths, a stack-based linear pass)
and the DOL (real transitions are entries whose code differs from the
running code — page-initial pseudo-transitions are filtered out) directly
from the on-disk pages.
"""

from __future__ import annotations

import json
import os
from typing import List

from repro.dol.codebook import Codebook
from repro.dol.labeling import DOL
from repro.errors import StorageError
from repro.storage.encoding import ENTRY_SIZE, NodeEntry
from repro.storage.headers import HEADER_SIZE, PageHeader, PageHeaderTable
from repro.storage.nokstore import NoKStore
from repro.storage.pager import Pager
from repro.xmltree.document import NO_NODE, Document, TagDictionary

CATALOG_VERSION = 1


def catalog_path_for(path: str) -> str:
    """Default sidecar catalog location for a page file."""
    return path + ".catalog.json"


def save_store(store: NoKStore, catalog_path: str = None) -> str:
    """Persist a file-backed store's in-memory state; returns the path."""
    if store.pager.path is None:
        raise StorageError("only file-backed stores can be saved")
    store.buffer.flush_all()
    store.pager.sync()

    doc = store.doc
    catalog = {
        "version": CATALOG_VERSION,
        "page_size": store.page_size,
        "n_nodes": store.n_nodes,
        "n_pages": store.n_pages,
        "n_subjects": store.dol.codebook.n_subjects,
        "tags": [doc.tag_dict.name_of(i) for i in range(len(doc.tag_dict))],
        "texts": doc.texts,
        "codebook": [f"{mask:x}" for _code, mask in store.dol.codebook.entries()],
    }
    catalog_path = catalog_path or catalog_path_for(store.pager.path)
    with open(catalog_path, "w", encoding="utf-8") as handle:
        json.dump(catalog, handle)
    return catalog_path


def open_store(
    path: str, catalog_path: str = None, buffer_capacity: int = 64
) -> NoKStore:
    """Reopen a saved store: pages from disk, catalog from the sidecar."""
    catalog_path = catalog_path or catalog_path_for(path)
    if not os.path.exists(catalog_path):
        raise StorageError(f"missing catalog {catalog_path}")
    with open(catalog_path, "r", encoding="utf-8") as handle:
        catalog = json.load(handle)
    if catalog.get("version") != CATALOG_VERSION:
        raise StorageError(f"unsupported catalog version {catalog.get('version')}")

    page_size = catalog["page_size"]
    n_nodes = catalog["n_nodes"]
    n_pages = catalog["n_pages"]
    pager = Pager.open_existing(path, page_size)
    if pager.n_pages < n_pages:
        raise StorageError("page file shorter than the catalog records")

    # Rebuild the codebook.
    codebook = Codebook(catalog["n_subjects"])
    for mask_hex in catalog["codebook"]:
        codebook.encode(int(mask_hex, 16))

    # One pass over the pages: rebuild document arrays, headers, and DOL.
    tag_dict = TagDictionary()
    for name in catalog["tags"]:
        tag_dict.intern(name)
    texts = list(catalog["texts"])
    if len(texts) != n_nodes:
        raise StorageError("catalog texts do not match the node count")

    tags: List[int] = []
    depth: List[int] = []
    subtree: List[int] = []
    parent: List[int] = []
    stack: List[int] = []  # positions of open ancestors
    headers = PageHeaderTable()
    positions: List[int] = []
    codes: List[int] = []
    running_code = None

    pos = 0
    for page_id in range(n_pages):
        data = pager.read_page(page_id)
        header = PageHeader.unpack(data)
        headers.append(header)
        offset = HEADER_SIZE
        for index in range(header.n_entries):
            entry = NodeEntry.unpack(data, offset)
            offset += ENTRY_SIZE
            tags.append(entry.tag_id)
            depth.append(entry.depth)
            subtree.append(entry.subtree)
            while len(stack) > entry.depth:
                stack.pop()
            parent.append(stack[-1] if stack else NO_NODE)
            stack.append(pos)
            if entry.is_transition and entry.code != running_code:
                positions.append(pos)
                codes.append(entry.code)
                running_code = entry.code
            pos += 1
    if pos != n_nodes:
        raise StorageError(
            f"pages hold {pos} entries but the catalog records {n_nodes}"
        )

    doc = Document(tags, parent, subtree, depth, texts, tag_dict)
    doc.validate()
    dol = DOL(n_nodes, codebook)
    dol.positions = positions
    dol.codes = codes
    dol.validate()

    pager.stats.reset()
    return NoKStore.attach(doc, dol, pager, headers, buffer_capacity)
