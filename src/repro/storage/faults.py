"""Deterministic fault injection for the storage stack.

Crash-safety claims are only as good as the failure model they were
tested against. This module provides that model in a seedable,
reproducible form:

- :class:`FaultPlan` — a schedule of storage-level faults, expressed
  against global operation counters ("fail the 7th write", "tear the 4th
  write at byte 130", "crash at the 2nd sync", "flip bit 11 of the 3rd
  read", "silently drop every sync"). One plan instance is shared by the
  page file and the write-ahead log, so the counters cover every byte the
  store persists.
- :class:`FaultInjectingPager` — a :class:`~repro.storage.pager.Pager`
  whose raw byte I/O consults a plan.
- :class:`InjectedCrash` — the simulated power-cut. It deliberately does
  **not** derive from :class:`~repro.errors.ReproError`: library code
  that catches storage errors must never absorb a crash.

After a plan has fired its crash, every further operation raises — a
crashed process does not keep doing I/O. The crash-recovery harness
(``tests/test_crash_recovery.py``) runs an update workload once per
schedule point, kills it there, reopens the store through WAL recovery,
and asserts the result is exactly the pre- or post-update state.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.storage.pager import DEFAULT_PAGE_SIZE, Pager


class InjectedCrash(Exception):
    """The simulated crash: raised at a scheduled fault point."""


@dataclass
class FaultPlan:
    """A deterministic schedule of storage faults.

    All operation indices are 1-based and counted across every consumer
    sharing the plan (data pages and WAL alike). ``tear_offset`` and
    ``flip_bit_index`` may be left ``None`` to be derived from ``seed``,
    keeping plans reproducible without hand-picking byte positions.

    Two usage modes share this class:

    - the *crash matrix* schedules a single fault at an exact operation
      index and kills the process there (``crash_at_write`` & co.);
    - the *chaos harness* keeps the process alive and injects transient
      bit rot at a seeded rate (``read_flip_rate``) — every consulted
      read flips one random bit with that probability, which the CRC
      trailer then catches downstream. Hooks are thread-safe (serving
      reads come from many threads), and the whole plan can be paused
      with :meth:`disable` / resumed with :meth:`enable` so a store can
      be opened cleanly before the faults start firing.
    """

    crash_at_write: Optional[int] = None  # the Nth write fails before any byte lands
    tear_at_write: Optional[int] = None  # the Nth write lands partially, then crash
    tear_offset: Optional[int] = None  # bytes of the torn write that land (seeded if None)
    crash_at_sync: Optional[int] = None  # crash at the Nth sync, before it takes effect
    drop_syncs: bool = False  # syncs silently become no-ops
    flip_bit_at_read: Optional[int] = None  # the Nth read returns one flipped bit
    flip_bit_index: Optional[int] = None  # which bit of the read payload (seeded if None)
    read_flip_rate: float = 0.0  # chaos mode: flip one bit of a read with this probability
    seed: int = 0

    writes: int = field(default=0, init=False)
    reads: int = field(default=0, init=False)
    syncs: int = field(default=0, init=False)
    crashed: bool = field(default=False, init=False)
    flips_injected: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()
        self._enabled = True

    # -- chaos toggling -------------------------------------------------------

    def enable(self) -> None:
        """Resume injecting faults (hooks keep counting either way)."""
        with self._lock:
            self._enabled = True

    def disable(self) -> None:
        """Stop injecting faults; every hook passes through unchanged."""
        with self._lock:
            self._enabled = False

    @property
    def enabled(self) -> bool:
        with self._lock:
            return self._enabled

    # -- hooks ----------------------------------------------------------------

    def on_write(self, n_bytes: int) -> int:
        """Account one write of ``n_bytes``; returns how many may land.

        Raises :class:`InjectedCrash` for a scheduled hard failure. A
        return value smaller than ``n_bytes`` instructs the caller to
        write that prefix and then call :meth:`crash` — the torn write.
        """
        with self._lock:
            self._check_alive()
            self.writes += 1
            if not self._enabled:
                return n_bytes
            if self.crash_at_write is not None and self.writes == self.crash_at_write:
                self._crash_locked(
                    f"write #{self.writes} failed before any byte landed"
                )
            if self.tear_at_write is not None and self.writes == self.tear_at_write:
                offset = self.tear_offset
                if offset is None:
                    offset = self._rng.randrange(max(n_bytes, 1))
                return min(offset, n_bytes)
            return n_bytes

    def on_read(self, data: bytes) -> bytes:
        """Account one read; possibly return it with one bit flipped."""
        with self._lock:
            self._check_alive()
            self.reads += 1
            if not self._enabled:
                return data
            flip = (
                self.flip_bit_at_read is not None
                and self.reads == self.flip_bit_at_read
            )
            if not flip and self.read_flip_rate > 0.0:
                flip = self._rng.random() < self.read_flip_rate
            if flip:
                bit = self.flip_bit_index
                if bit is None:
                    bit = self._rng.randrange(max(len(data) * 8, 1))
                self.flips_injected += 1
                corrupted = bytearray(data)
                corrupted[bit // 8] ^= 1 << (bit % 8)
                return bytes(corrupted)
            return data

    def on_sync(self) -> bool:
        """Account one sync; False means the sync must be skipped."""
        with self._lock:
            self._check_alive()
            self.syncs += 1
            if not self._enabled:
                return True
            if self.crash_at_sync is not None and self.syncs == self.crash_at_sync:
                self._crash_locked(f"crash at sync #{self.syncs}")
            return not self.drop_syncs

    def crash(self, reason: str) -> None:
        """Mark the plan crashed and raise :class:`InjectedCrash`."""
        with self._lock:
            self._crash_locked(reason)

    def _crash_locked(self, reason: str) -> None:
        self.crashed = True
        raise InjectedCrash(reason)

    def _check_alive(self) -> None:
        """Caller holds ``_lock``."""
        if self.crashed:
            raise InjectedCrash("process already crashed")


def faulted_write(
    plan: Optional[FaultPlan], write: Callable[[bytes], object], payload: bytes
) -> None:
    """Write ``payload`` through ``write`` under a plan's write faults."""
    if plan is None:
        write(payload)
        return
    allowed = plan.on_write(len(payload))
    if allowed >= len(payload):
        write(payload)
        return
    write(payload[:allowed])
    plan.crash(f"torn write: {allowed} of {len(payload)} bytes landed")


class FaultInjectingPager(Pager):
    """A pager whose raw reads, writes, and syncs consult a fault plan."""

    def __init__(
        self,
        path: Optional[str] = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        plan: Optional[FaultPlan] = None,
    ):
        super().__init__(path, page_size)
        self.plan = plan

    @classmethod
    def open_existing(
        cls,
        path: str,
        page_size: int = DEFAULT_PAGE_SIZE,
        plan: Optional[FaultPlan] = None,
    ) -> "FaultInjectingPager":
        pager = super().open_existing(path, page_size)
        pager.plan = plan
        return pager

    def _read_raw(self, offset: int, length: int) -> bytes:
        data = super()._read_raw(offset, length)
        if self.plan is not None:
            data = self.plan.on_read(data)
        return data

    def _write_raw(self, offset: int, payload: bytes) -> None:
        faulted_write(
            self.plan, lambda chunk: super(FaultInjectingPager, self)._write_raw(offset, chunk), payload
        )

    def sync(self) -> None:
        if self.plan is not None and not self.plan.on_sync():
            return
        super().sync()
