"""Vectorized (batch-at-a-time) physical operators.

The tuple operators in :mod:`repro.exec.operators` move one row per
Python generator hop, paying interpreter dispatch and two clock reads of
instrumentation per row — the dominant cost of the pipeline on CPython.
The operators here are drop-in *subclasses* of their tuple counterparts
(same plan shape, same EXPLAIN names, same pruning decisions) whose rows
are batches:

- scan-level edges carry ``array('q')`` position batches; binding-level
  edges carry lists of binding dicts;
- :class:`BatchTagIndexScan` emits batches with doubling sizes (64 up to
  1024), so a ``Limit`` near the root still touches only a prefix of the
  candidates — streaming is preserved at batch granularity;
- :class:`BatchAccessFilter` intersects whole batches against the
  query's decoded accessibility run list
  (:meth:`~repro.exec.context.ExecutionContext.run_list`) instead of
  probing nodes; :class:`BatchPageSkipScan` tests each page once per
  batch group and routes hint-free backends through the same run list;
- :class:`BatchRootVerify` verifies a batch page-group at a time over a
  store (one decoded-page fetch per group) and straight off the tag
  array in memory; :class:`BatchSTDJoin` merges sorted position arrays
  with ``bisect``;
- instrumentation is per *batch*: ``rows_out`` still counts rows, and
  every batch operator reports a ``batches`` counter that
  ``EXPLAIN ANALYZE`` turns into rows-per-batch.

The Planner selects these by default (``exec_mode="batch"``); the tuple
operators remain for differential testing (``exec_mode="tuple"``).
"""

from __future__ import annotations

import time
from array import array
from bisect import bisect_left, bisect_right
from types import SimpleNamespace
from typing import Dict, Iterator, List

from repro.errors import PageCorruptionError
from repro.exec.context import ExecutionContext
from repro.exec.operators import (
    AccessFilter,
    Limit,
    NPMMatch,
    PageSkipScan,
    PathCheck,
    Project,
    RootVerify,
    STDJoin,
    TagIndexScan,
)
from repro.nok.matcher import Binding, match_nok_subtree
from repro.nok.pattern import CHILD
from repro.secure.semantics import VIEW

#: First batch a scan emits; each subsequent batch doubles up to the max,
#: so early-terminating plans (Limit) touch few candidates while long
#: scans amortize per-batch overhead.
MIN_BATCH_SIZE = 32
MAX_BATCH_SIZE = 1024


class BatchOperatorMixin:
    """Batch-granular instrumentation shared by every batch operator.

    ``_rows`` yields batches; ``rows_out`` counts the rows inside them
    and ``extra['batches']`` the batches themselves — two clock reads per
    batch instead of two per row.
    """

    #: plan edges below this operator carry batches, not rows
    emits_batches = True

    def _instrumented(self, ctx: ExecutionContext):
        rows = self._rows(ctx)
        stats = self.stats
        perf = time.perf_counter
        while True:
            started = perf()
            try:
                batch = next(rows)
            except StopIteration:
                stats.time += perf() - started
                return
            stats.time += perf() - started
            stats.rows_out += len(batch)
            stats.bump("batches")
            yield batch


class BatchTagIndexScan(BatchOperatorMixin, TagIndexScan):
    """Index candidates as ``array('q')`` batches with doubling sizes."""

    def _rows(self, ctx: ExecutionContext) -> Iterator[array]:
        pnode, doc, stats = self.pnode, ctx.doc, ctx.stats
        if self.anchored:
            if pnode.matches(doc.tag_name(0), doc.text(0)):
                stats.candidates += 1
                yield array("q", (0,))
            return
        if pnode.tag == "*":
            positions: "range | List[int]" = range(len(doc))
        elif pnode.value is not None:
            positions = ctx.index.positions_with_value(pnode.tag, pnode.value)
        else:
            positions = ctx.index.positions(pnode.tag)
        total = len(positions)
        start = 0
        size = MIN_BATCH_SIZE
        while start < total:
            batch = array("q", positions[start : start + size])
            stats.candidates += len(batch)
            start += len(batch)
            size = min(size * 2, MAX_BATCH_SIZE)
            yield batch


class BatchPageSkipScan(BatchOperatorMixin, PageSkipScan):
    """Section 3.3 page skipping, one header test per page group.

    Candidate batches arrive sorted, so each batch splits into runs of
    positions sharing a page; the quarantine and header tests run once
    per group (header verdicts additionally memoized for the query).
    Hint-free backends intersect the surviving batch against the decoded
    run list — the bulk route that replaces per-node re-probing.
    """

    def _rows(self, ctx: ExecutionContext) -> Iterator[array]:
        store, subjects, stats = ctx.store, ctx.subjects, ctx.stats
        has_hints = store.has_page_hints
        run_list = None if has_hints else ctx.run_list()
        entries_per_page = store.entries_per_page
        header_skips: Dict[int, bool] = {}
        for batch in self.child.execute(ctx):
            out = array("q")
            i, n = 0, len(batch)
            while i < n:
                page_id = batch[i] // entries_per_page
                j = bisect_left(batch, (page_id + 1) * entries_per_page, i)
                count = j - i
                if not ctx.strict and page_id in store.quarantined:
                    stats.candidates_skipped_corrupt += count
                    self.stats.bump("skipped_corrupt", count)
                elif has_hints:
                    skip = header_skips.get(page_id)
                    if skip is None:
                        skip = store.page_fully_inaccessible_any(page_id, subjects)
                        header_skips[page_id] = skip
                    if skip:
                        stats.candidates_skipped_by_header += count
                        self.stats.bump("skipped", count)
                    else:
                        out.extend(batch[i:j])
                else:
                    out.extend(batch[i:j])
                i = j
            if run_list is not None and out:
                kept = run_list.filter_positions(out)
                dropped = len(out) - len(kept)
                if dropped:
                    stats.candidates_skipped_by_runs += dropped
                    stats.probes_saved += dropped
                    self.stats.bump("skipped_runs", dropped)
                out = kept
            if out:
                yield out


class BatchRootVerify(BatchOperatorMixin, RootVerify):
    """Verify candidate batches against the source, page group at a time.

    In memory the common case (tag test only) is a straight comparison
    against the document's tag-id array. Over a store each page group
    costs one decoded-page fetch; a corrupt page drops its whole group
    (reported through the usual degradation path).
    """

    def _rows(self, ctx: ExecutionContext) -> Iterator[array]:
        pnode = self.pnode
        simple = pnode.value is None and not pnode.attr_tests
        if ctx.store is None:
            yield from self._verify_memory(ctx, simple)
        else:
            yield from self._verify_store(ctx, simple)

    def _verify_memory(self, ctx: ExecutionContext, simple: bool) -> Iterator[array]:
        pnode, doc = self.pnode, ctx.doc
        if simple and pnode.tag == "*":
            yield from self.child.execute(ctx)
            return
        if simple:
            tag_id = doc.tag_dict.get(pnode.tag)
            tags = doc.tags
            for batch in self.child.execute(ctx):
                kept = array("q", [pos for pos in batch if tags[pos] == tag_id])
                if kept:
                    yield kept
            return
        for batch in self.child.execute(ctx):
            kept = array("q")
            for pos in batch:
                if not pnode.matches(doc.tag_name(pos), doc.text(pos)):
                    continue
                if pnode.attr_tests and not pnode.matches_attrs(doc.attrs_of(pos)):
                    continue
                kept.append(pos)
            if kept:
                yield kept

    def _verify_store(self, ctx: ExecutionContext, simple: bool) -> Iterator[array]:
        pnode, store = self.pnode, ctx.store
        doc = ctx.doc
        wildcard = pnode.tag == "*"
        tag_id = None if wildcard else doc.tag_dict.get(pnode.tag)
        name_of = doc.tag_dict.name_of
        entries_per_page = store.entries_per_page
        for batch in self.child.execute(ctx):
            kept = array("q")
            i, n = 0, len(batch)
            while i < n:
                page_id = batch[i] // entries_per_page
                j = bisect_left(batch, (page_id + 1) * entries_per_page, i)
                try:
                    entries = store.page_entries(page_id)
                except PageCorruptionError as exc:
                    ctx.report_corruption(exc)  # raises when ctx.strict
                    # report_corruption counted one candidate; the rest
                    # of this page group is dropped with it.
                    ctx.stats.candidates_skipped_corrupt += j - i - 1
                    i = j
                    continue
                base = page_id * entries_per_page
                for k in range(i, j):
                    pos = batch[k]
                    entry = entries[pos - base]
                    if not wildcard and entry.tag_id != tag_id:
                        continue
                    if simple:
                        kept.append(pos)
                        continue
                    if not pnode.matches(name_of(entry.tag_id), store.text(pos)):
                        continue
                    if pnode.attr_tests and not pnode.matches_attrs(
                        store.attrs_of(pos)
                    ):
                        continue
                    kept.append(pos)
                i = j
            if kept:
                yield kept


class BatchAccessFilter(BatchOperatorMixin, AccessFilter):
    """The ε-NoK ACCESS pre-condition as a batch-vs-run-list intersection.

    Instead of probing each candidate, the sorted batch is intersected
    against the accessible intervals of the query's run list — the same
    decisions the tuple filter makes, without per-node probes. Checks
    are still counted per candidate in ``stats.access_checks``.
    """

    def _rows(self, ctx: ExecutionContext) -> Iterator[array]:
        run_list = ctx.run_list()
        stats = ctx.stats
        if run_list is None:  # pragma: no cover - only secure plans carry one
            access = ctx.access
            for batch in self.child.execute(ctx):
                kept = array("q", [pos for pos in batch if access(pos)])
                if len(kept) < len(batch):
                    self.stats.bump("denied", len(batch) - len(kept))
                if kept:
                    yield kept
            return
        count_probes = ctx.semantics != VIEW
        for batch in self.child.execute(ctx):
            kept = run_list.filter_positions(batch)
            n, k = len(batch), len(kept)
            stats.access_checks += n
            if count_probes:
                stats.probes_saved += n
            if k < n:
                self.stats.bump("denied", n - k)
            if k:
                yield kept


class BatchNPMMatch(BatchOperatorMixin, NPMMatch):
    """ε-NoK matching of a candidate batch into a binding batch.

    A single-node NoK subtree (the common shape under ``//``-chained
    queries: every step its own subtree, folded by structural joins)
    matches trivially — the candidate already passed the tag and access
    tests, so the binding is just ``{root: pos}``. That case skips the
    recursive matcher entirely; it performs no access calls for leaf
    subtrees either, so the counters agree with tuple mode exactly.
    """

    def _rows(self, ctx: ExecutionContext) -> Iterator[List[Binding]]:
        source, subtree, ordered = ctx.source, self.subtree, self.ordered
        root = subtree.root
        if not any(axis == CHILD for axis in root.axes):
            key = id(root)
            bound = any(node is root for node in subtree.output_nodes)
            for batch in self.child.execute(ctx):
                if bound:
                    yield [{key: pos} for pos in batch]
                else:
                    yield [{} for _ in batch]
            return
        access = ctx.access
        for batch in self.child.execute(ctx):
            out: List[Binding] = []
            for pos in batch:
                try:
                    out.extend(
                        match_nok_subtree(source, subtree, pos, access, ordered)
                    )
                except PageCorruptionError as exc:
                    ctx.report_corruption(exc)  # raises when ctx.strict
            if out:
                yield out


class BatchSTDJoin(BatchOperatorMixin, STDJoin):
    """Structural join as a merge over sorted position arrays.

    The build side's distinct positions freeze into an ``array('q')``;
    each probe anchor then takes its descendant slice with two bisects
    (``(anchor, subtree_end(anchor))`` interval containment) instead of
    a scan-and-test loop.
    """

    def _rows(self, ctx: ExecutionContext) -> Iterator[List[Binding]]:
        descendants_of: Dict[int, List[Binding]] = {}
        for batch in self.children[1].execute(ctx):
            for binding in batch:
                descendants_of.setdefault(binding[self.child_key], []).append(
                    binding
                )
        self.stats.bump("build_rows", sum(map(len, descendants_of.values())))
        if not descendants_of:
            return  # empty build side: never pull the probe side
        desc_positions = array("q", sorted(descendants_of))
        subtree_end = ctx.doc.subtree_end
        parent_key = self.parent_key
        seen = set()
        for batch in self.children[0].execute(ctx):
            out: List[Binding] = []
            for m in batch:
                anchor = m[parent_key]
                lo = bisect_right(desc_positions, anchor)
                hi = bisect_left(desc_positions, subtree_end(anchor), lo)
                for i in range(lo, hi):
                    for dm in descendants_of[desc_positions[i]]:
                        combined = {**m, **dm}
                        key = frozenset(combined.items())
                        if key not in seen:
                            seen.add(key)
                            out.append(combined)
            if out:
                yield out


class BatchPathCheck(BatchOperatorMixin, PathCheck):
    """ε-STD path test over binding batches (view semantics).

    Each joined pair resolves through the deepest-blocked-ancestor index
    — interval containment of the blocked ancestor against the pair — in
    O(1), batched to one generator hop per batch.
    """

    def _rows(self, ctx: ExecutionContext) -> Iterator[List[Binding]]:
        path_ok = ctx.path_index.path_accessible
        parent_key, child_key = self.parent_key, self.child_key
        for batch in self.child.execute(ctx):
            out = [m for m in batch if path_ok(m[parent_key], m[child_key])]
            pruned = len(batch) - len(out)
            if pruned:
                self.stats.bump("pruned", pruned)
            if out:
                yield out


class BatchProject(BatchOperatorMixin, Project):
    """Distinct returning-node positions, batched."""

    def _rows(self, ctx: ExecutionContext) -> Iterator[array]:
        seen = set()
        key = self.returning_key
        for batch in self.child.execute(ctx):
            self.stats.bump("bindings_in", len(batch))
            out = array("q")
            for binding in batch:
                pos = binding[key]
                if pos not in seen:
                    seen.add(pos)
                    out.append(pos)
            if out:
                yield out


class BatchLimit(BatchOperatorMixin, Limit):
    """Stop after ``k`` rows, truncating the final batch."""

    def _rows(self, ctx: ExecutionContext):
        k = self.k
        if k <= 0:
            return
        emitted = 0
        for batch in self.child.execute(ctx):
            remaining = k - emitted
            if len(batch) > remaining:
                batch = batch[:remaining]
            emitted += len(batch)
            yield batch
            if emitted >= k:
                return


#: The batch operator set, shaped like the Planner expects an operator
#: namespace to look (see ``repro.exec.planner.TUPLE_OPERATORS``).
BATCH_OPERATORS = SimpleNamespace(
    TagIndexScan=BatchTagIndexScan,
    PageSkipScan=BatchPageSkipScan,
    RootVerify=BatchRootVerify,
    AccessFilter=BatchAccessFilter,
    NPMMatch=BatchNPMMatch,
    STDJoin=BatchSTDJoin,
    PathCheck=BatchPathCheck,
    Project=BatchProject,
    Limit=BatchLimit,
)
