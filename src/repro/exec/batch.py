"""Vectorized (batch-at-a-time) physical operators.

The tuple operators in :mod:`repro.exec.operators` move one row per
Python generator hop, paying interpreter dispatch and two clock reads of
instrumentation per row — the dominant cost of the pipeline on CPython.
The operators here are drop-in *subclasses* of their tuple counterparts
(same plan shape, same EXPLAIN names, same pruning decisions) whose rows
are batches:

- scan-level edges carry ``array('q')`` position batches; binding-level
  edges carry :class:`ColumnBatch` position columns when every binding is
  positional (the ``//``-chain case), falling back to lists of binding
  dicts for full NPM matches;
- :class:`BatchTagIndexScan` emits batches with doubling sizes (64 up to
  1024), so a ``Limit`` near the root still touches only a prefix of the
  candidates — streaming is preserved at batch granularity;
- :class:`BatchAccessFilter` intersects whole batches against the
  query's decoded accessibility run list
  (:meth:`~repro.exec.context.ExecutionContext.run_list`) through the
  active array kernel (:mod:`repro.exec.kernels`);
  :class:`BatchPageSkipScan` tests each page once per batch group and
  routes hint-free backends through the same run-list kernel;
- :class:`BatchRootVerify` verifies a batch page-group at a time over a
  store — reading the tag column of the page's
  :class:`~repro.storage.codecs.PageColumns` by slice, no per-entry
  objects — and straight off the tag array in memory;
  :class:`BatchSTDJoin` merges sorted position arrays (vectorized
  ``searchsorted`` under the numpy kernel) and defers binding-dict
  construction entirely: positional joins flow as :class:`ColumnBatch`
  until :class:`BatchProject` reads the returning column;
- instrumentation is per *batch*: ``rows_out`` still counts rows, and
  every batch operator reports a ``batches`` counter that
  ``EXPLAIN ANALYZE`` turns into rows-per-batch.

The Planner selects these by default (``exec_mode="batch"``); the tuple
operators remain for differential testing (``exec_mode="tuple"``).
"""

from __future__ import annotations

import time
from array import array
from bisect import bisect_left
from itertools import chain
from types import SimpleNamespace
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import PageCorruptionError
from repro.exec.context import ExecutionContext
from repro.exec.kernels import active_kernels
from repro.exec.operators import (
    AccessFilter,
    Limit,
    NPMMatch,
    PageSkipScan,
    PathCheck,
    Project,
    RootVerify,
    STDJoin,
    TagIndexScan,
)
from repro.nok.matcher import Binding, match_nok_subtree
from repro.nok.pattern import CHILD
from repro.secure.semantics import VIEW

#: First batch a scan emits; each subsequent batch doubles up to the max,
#: so early-terminating plans (Limit) touch few candidates while long
#: scans amortize per-batch overhead.
MIN_BATCH_SIZE = 32
MAX_BATCH_SIZE = 1024


class ColumnBatch:
    """A binding batch as parallel position columns — no dicts.

    ``keys`` are the bound pattern-node ids and ``columns`` the matching
    ``array('q')`` position columns; row ``i`` is the binding
    ``{keys[k]: columns[k][i]}``. ``n`` is explicit so a batch of
    empty bindings (no bound keys) still knows its row count.

    Operators that understand the positional form work on the columns
    directly; anything else calls :meth:`bindings` to materialize the
    historical dict rows — the two representations are interchangeable
    by construction.
    """

    __slots__ = ("keys", "columns", "n")

    def __init__(
        self, keys: Tuple[int, ...], columns: Tuple[array, ...], n: int
    ):
        self.keys = keys
        self.columns = columns
        self.n = n

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, item) -> "ColumnBatch":
        if not isinstance(item, slice):
            raise TypeError("ColumnBatch supports slice access only")
        columns = tuple(col[item] for col in self.columns)
        n = len(columns[0]) if columns else len(range(*item.indices(self.n)))
        return ColumnBatch(self.keys, columns, n)

    def column(self, key: int) -> array:
        return self.columns[self.keys.index(key)]

    def bindings(self) -> List[Binding]:
        """Materialize the dict-row view (the fallback interop path)."""
        if not self.keys:
            return [{} for _ in range(self.n)]
        keys = self.keys
        return [dict(zip(keys, row)) for row in zip(*self.columns)]


#: what binding-level batch edges may carry
BindingBatch = Union[ColumnBatch, List[Binding]]


def _as_bindings(batch: BindingBatch) -> List[Binding]:
    return batch.bindings() if isinstance(batch, ColumnBatch) else batch


class BatchOperatorMixin:
    """Batch-granular instrumentation shared by every batch operator.

    ``_rows`` yields batches; ``rows_out`` counts the rows inside them
    and ``extra['batches']`` the batches themselves — two clock reads per
    batch instead of two per row.
    """

    #: plan edges below this operator carry batches, not rows
    emits_batches = True

    def _instrumented(self, ctx: ExecutionContext):
        rows = self._rows(ctx)
        stats = self.stats
        perf = time.perf_counter
        while True:
            started = perf()
            try:
                batch = next(rows)
            except StopIteration:
                stats.time += perf() - started
                return
            stats.time += perf() - started
            stats.rows_out += len(batch)
            stats.bump("batches")
            yield batch


class BatchTagIndexScan(BatchOperatorMixin, TagIndexScan):
    """Index candidates as ``array('q')`` batches with doubling sizes."""

    def _rows(self, ctx: ExecutionContext) -> Iterator[array]:
        pnode, doc, stats = self.pnode, ctx.doc, ctx.stats
        if self.anchored:
            if pnode.matches(doc.tag_name(0), doc.text(0)):
                stats.candidates += 1
                yield array("q", (0,))
            return
        if pnode.tag == "*":
            positions: "range | List[int]" = range(len(doc))
        elif pnode.value is not None:
            positions = ctx.index.positions_with_value(pnode.tag, pnode.value)
        else:
            positions = ctx.index.positions(pnode.tag)
        total = len(positions)
        start = 0
        size = MIN_BATCH_SIZE
        while start < total:
            batch = array("q", positions[start : start + size])
            stats.candidates += len(batch)
            start += len(batch)
            size = min(size * 2, MAX_BATCH_SIZE)
            yield batch


class BatchPageSkipScan(BatchOperatorMixin, PageSkipScan):
    """Section 3.3 page skipping, one header test per page group.

    Candidate batches arrive sorted, so each batch splits into runs of
    positions sharing a page; the quarantine and header tests run once
    per group (header verdicts additionally memoized for the query).
    Hint-free backends intersect the surviving batch against the decoded
    run list through the array kernel — one whole-batch merge, no
    per-position probing.
    """

    def _rows(self, ctx: ExecutionContext) -> Iterator[array]:
        store, subjects, stats = ctx.store, ctx.subjects, ctx.stats
        has_hints = store.has_page_hints
        run_list = None if has_hints else ctx.run_list()
        entries_per_page = store.entries_per_page
        header_skips: Dict[int, bool] = {}
        for batch in self.child.execute(ctx):
            out = array("q")
            i, n = 0, len(batch)
            while i < n:
                page_id = batch[i] // entries_per_page
                j = bisect_left(batch, (page_id + 1) * entries_per_page, i)
                count = j - i
                if not ctx.strict and page_id in store.quarantined:
                    stats.candidates_skipped_corrupt += count
                    self.stats.bump("skipped_corrupt", count)
                elif has_hints:
                    skip = header_skips.get(page_id)
                    if skip is None:
                        skip = store.page_fully_inaccessible_any(page_id, subjects)
                        header_skips[page_id] = skip
                    if skip:
                        stats.candidates_skipped_by_header += count
                        self.stats.bump("skipped", count)
                    else:
                        out.extend(batch[i:j])
                else:
                    out.extend(batch[i:j])
                i = j
            if run_list is not None and out:
                kept = run_list.filter_positions(out)
                dropped = len(out) - len(kept)
                if dropped:
                    stats.candidates_skipped_by_runs += dropped
                    stats.probes_saved += dropped
                    self.stats.bump("skipped_runs", dropped)
                out = kept
            if out:
                yield out


class BatchRootVerify(BatchOperatorMixin, RootVerify):
    """Verify candidate batches against the source, page group at a time.

    In memory the common case (tag test only) is a straight comparison
    against the document's tag-id array. Over a store each page group
    costs one decoded-page fetch, and the tag test reads the page's
    columnar tag array directly — no :class:`NodeEntry` objects. A
    corrupt page drops its whole group (reported through the usual
    degradation path).
    """

    def _rows(self, ctx: ExecutionContext) -> Iterator[array]:
        pnode = self.pnode
        simple = pnode.value is None and not pnode.attr_tests
        if ctx.store is None:
            yield from self._verify_memory(ctx, simple)
        else:
            yield from self._verify_store(ctx, simple)

    def _verify_memory(self, ctx: ExecutionContext, simple: bool) -> Iterator[array]:
        pnode, doc = self.pnode, ctx.doc
        if simple and pnode.tag == "*":
            yield from self.child.execute(ctx)
            return
        if simple:
            tag_id = doc.tag_dict.get(pnode.tag)
            tags = doc.tags
            for batch in self.child.execute(ctx):
                kept = array("q", [pos for pos in batch if tags[pos] == tag_id])
                if kept:
                    yield kept
            return
        for batch in self.child.execute(ctx):
            kept = array("q")
            for pos in batch:
                if not pnode.matches(doc.tag_name(pos), doc.text(pos)):
                    continue
                if pnode.attr_tests and not pnode.matches_attrs(doc.attrs_of(pos)):
                    continue
                kept.append(pos)
            if kept:
                yield kept

    def _verify_store(self, ctx: ExecutionContext, simple: bool) -> Iterator[array]:
        pnode, store = self.pnode, ctx.store
        doc = ctx.doc
        kernels = active_kernels()
        wildcard = pnode.tag == "*"
        tag_id = None if wildcard else doc.tag_dict.get(pnode.tag)
        name_of = doc.tag_dict.name_of
        entries_per_page = store.entries_per_page
        for batch in self.child.execute(ctx):
            kept = array("q")
            i, n = 0, len(batch)
            while i < n:
                page_id = batch[i] // entries_per_page
                j = bisect_left(batch, (page_id + 1) * entries_per_page, i)
                try:
                    columns = store.page_columns(page_id)
                except PageCorruptionError as exc:
                    ctx.report_corruption(exc)  # raises when ctx.strict
                    # report_corruption counted one candidate; the rest
                    # of this page group is dropped with it.
                    ctx.stats.candidates_skipped_corrupt += j - i - 1
                    i = j
                    continue
                base = page_id * entries_per_page
                tags = columns.tags
                if simple and wildcard:
                    kept.extend(batch[i:j])
                elif simple:
                    if tag_id is not None:
                        kept.extend(
                            kernels.take_eq(batch[i:j], tags, tag_id, base)
                        )
                else:
                    for k in range(i, j):
                        pos = batch[k]
                        entry_tag = tags[pos - base]
                        if not wildcard and entry_tag != tag_id:
                            continue
                        if not pnode.matches(name_of(entry_tag), store.text(pos)):
                            continue
                        if pnode.attr_tests and not pnode.matches_attrs(
                            store.attrs_of(pos)
                        ):
                            continue
                        kept.append(pos)
                i = j
            if kept:
                yield kept


class BatchAccessFilter(BatchOperatorMixin, AccessFilter):
    """The ε-NoK ACCESS pre-condition as a batch-vs-run-list intersection.

    Instead of probing each candidate, the sorted batch is intersected
    against the accessible intervals of the query's run list — one array
    kernel call per batch, the same decisions the tuple filter makes
    without per-node probes. Checks are still counted per candidate in
    ``stats.access_checks``.
    """

    def _rows(self, ctx: ExecutionContext) -> Iterator[array]:
        run_list = ctx.run_list()
        stats = ctx.stats
        if run_list is None:  # pragma: no cover - only secure plans carry one
            access = ctx.access
            for batch in self.child.execute(ctx):
                kept = array("q", [pos for pos in batch if access(pos)])
                if len(kept) < len(batch):
                    self.stats.bump("denied", len(batch) - len(kept))
                if kept:
                    yield kept
            return
        count_probes = ctx.semantics != VIEW
        for batch in self.child.execute(ctx):
            kept = run_list.filter_positions(batch)
            n, k = len(batch), len(kept)
            stats.access_checks += n
            if count_probes:
                stats.probes_saved += n
            if k < n:
                self.stats.bump("denied", n - k)
            if k:
                yield kept


class BatchNPMMatch(BatchOperatorMixin, NPMMatch):
    """ε-NoK matching of a candidate batch into a binding batch.

    A single-node NoK subtree (the common shape under ``//``-chained
    queries: every step its own subtree, folded by structural joins)
    matches trivially — the candidate already passed the tag and access
    tests, so the binding is just ``{root: pos}``. That case emits the
    position batch as a :class:`ColumnBatch` — the candidate array
    *becomes* the binding column, zero per-row work — and performs no
    access calls either, so the counters agree with tuple mode exactly.
    """

    def _rows(self, ctx: ExecutionContext) -> Iterator[BindingBatch]:
        source, subtree, ordered = ctx.source, self.subtree, self.ordered
        root = subtree.root
        if not any(axis == CHILD for axis in root.axes):
            key = id(root)
            bound = any(node is root for node in subtree.output_nodes)
            for batch in self.child.execute(ctx):
                if bound:
                    yield ColumnBatch((key,), (batch,), len(batch))
                else:
                    yield ColumnBatch((), (), len(batch))
            return
        access = ctx.access
        for batch in self.child.execute(ctx):
            out: List[Binding] = []
            for pos in batch:
                try:
                    out.extend(
                        match_nok_subtree(source, subtree, pos, access, ordered)
                    )
                except PageCorruptionError as exc:
                    ctx.report_corruption(exc)  # raises when ctx.strict
            if out:
                yield out


class BatchSTDJoin(BatchOperatorMixin, STDJoin):
    """Structural join as a merge over sorted position arrays.

    The build side's positions freeze into one sorted ``array('q')``;
    each probe batch then resolves every anchor's descendant slice in
    one kernel call (vectorized ``searchsorted`` under numpy, a bisect
    gallop under stdlib). When both inputs are positional
    (:class:`ColumnBatch`), the joined rows stay positional — column
    concatenation plus a tuple-keyed dedup — and no binding dicts exist
    until :class:`BatchProject`. Mixed or dict-shaped inputs fall back
    to the historical dict merge, bit-for-bit.
    """

    def _rows(self, ctx: ExecutionContext) -> Iterator[BindingBatch]:
        build_batches = list(self.children[1].execute(ctx))
        n_build = sum(len(batch) for batch in build_batches)
        self.stats.bump("build_rows", n_build)
        if n_build == 0:
            return  # empty build side: never pull the probe side
        probe = self.children[0].execute(ctx)
        first = next(probe, None)
        if first is None:
            return
        probe_stream = chain([first], probe)
        if self._positional(first, build_batches):
            yield from self._join_columns(ctx, build_batches, first, probe_stream)
        else:
            yield from self._join_dicts(ctx, build_batches, probe_stream)

    def _positional(
        self, first_probe: BindingBatch, build_batches: List[BindingBatch]
    ) -> bool:
        """True when both sides can join column-wise (disjoint keys)."""
        if not isinstance(first_probe, ColumnBatch):
            return False
        if self.parent_key not in first_probe.keys:
            return False
        for batch in build_batches:
            if not isinstance(batch, ColumnBatch):
                return False
            if self.child_key not in batch.keys:
                return False
            if set(batch.keys) & set(first_probe.keys):
                return False
        return True

    def _join_columns(
        self,
        ctx: ExecutionContext,
        build_batches: List[ColumnBatch],
        first_probe: ColumnBatch,
        probe_stream,
    ) -> Iterator[ColumnBatch]:
        build_keys = build_batches[0].keys
        build_cols = [array("q") for _ in build_keys]
        for batch in build_batches:
            for slot, key in enumerate(build_keys):
                build_cols[slot].extend(batch.column(key))
        ck_slot = build_keys.index(self.child_key)
        ck = build_cols[ck_slot]
        if any(ck[i] > ck[i + 1] for i in range(len(ck) - 1)):
            order = sorted(range(len(ck)), key=ck.__getitem__)
            build_cols = [
                array("q", (col[i] for i in order)) for col in build_cols
            ]
            ck = build_cols[ck_slot]
        kernels = active_kernels()
        subtree = ctx.doc.subtree
        parent_key = self.parent_key
        probe_keys = first_probe.keys
        out_keys = probe_keys + build_keys
        seen = set()
        for pbatch in probe_stream:
            anchors = pbatch.column(parent_key)
            ends = array("q", (pos + subtree[pos] for pos in anchors))
            los, his = kernels.join_ranges(anchors, ends, ck)
            pcols = pbatch.columns
            rows_out: List[tuple] = []
            if len(pcols) == 1 and len(build_cols) == 1:
                # the ``//``-chain shape: one bound column a side
                pk, bk = pcols[0], build_cols[0]
                for r, (lo, hi) in enumerate(zip(los, his)):
                    if lo >= hi:
                        continue
                    anchor = pk[r]
                    for b in range(lo, hi):
                        row = (anchor, bk[b])
                        if row not in seen:
                            seen.add(row)
                            rows_out.append(row)
            else:
                for r, (lo, hi) in enumerate(zip(los, his)):
                    if lo >= hi:
                        continue
                    prow = tuple(col[r] for col in pcols)
                    for b in range(lo, hi):
                        row = prow + tuple(col[b] for col in build_cols)
                        if row not in seen:
                            seen.add(row)
                            rows_out.append(row)
            if rows_out:
                yield ColumnBatch(
                    out_keys,
                    tuple(array("q", col) for col in zip(*rows_out)),
                    len(rows_out),
                )

    def _join_dicts(
        self,
        ctx: ExecutionContext,
        build_batches: List[BindingBatch],
        probe_stream,
    ) -> Iterator[List[Binding]]:
        descendants_of: Dict[int, List[Binding]] = {}
        for batch in build_batches:
            for binding in _as_bindings(batch):
                descendants_of.setdefault(binding[self.child_key], []).append(
                    binding
                )
        desc_positions = array("q", sorted(descendants_of))
        kernels = active_kernels()
        subtree = ctx.doc.subtree
        parent_key = self.parent_key
        seen = set()
        for batch in probe_stream:
            rows = _as_bindings(batch)
            anchors = array("q", (m[parent_key] for m in rows))
            ends = array("q", (pos + subtree[pos] for pos in anchors))
            los, his = kernels.join_ranges(anchors, ends, desc_positions)
            out: List[Binding] = []
            for m, lo, hi in zip(rows, los, his):
                for i in range(lo, hi):
                    for dm in descendants_of[desc_positions[i]]:
                        combined = {**m, **dm}
                        key = frozenset(combined.items())
                        if key not in seen:
                            seen.add(key)
                            out.append(combined)
            if out:
                yield out


class BatchPathCheck(BatchOperatorMixin, PathCheck):
    """ε-STD path test over binding batches (view semantics).

    Each joined pair resolves through the deepest-blocked-ancestor index
    — interval containment of the blocked ancestor against the pair — in
    O(1), batched to one generator hop per batch. Positional batches are
    filtered column-wise (the surviving rows stay positional).
    """

    def _rows(self, ctx: ExecutionContext) -> Iterator[BindingBatch]:
        path_ok = ctx.path_index.path_accessible
        parent_key, child_key = self.parent_key, self.child_key
        for batch in self.child.execute(ctx):
            if isinstance(batch, ColumnBatch):
                parents = batch.column(parent_key)
                children = batch.column(child_key)
                keep = [
                    i
                    for i in range(len(batch))
                    if path_ok(parents[i], children[i])
                ]
                pruned = len(batch) - len(keep)
                if pruned:
                    self.stats.bump("pruned", pruned)
                if keep:
                    if pruned:
                        yield ColumnBatch(
                            batch.keys,
                            tuple(
                                array("q", (col[i] for i in keep))
                                for col in batch.columns
                            ),
                            len(keep),
                        )
                    else:
                        yield batch
                continue
            out = [m for m in batch if path_ok(m[parent_key], m[child_key])]
            pruned = len(batch) - len(out)
            if pruned:
                self.stats.bump("pruned", pruned)
            if out:
                yield out


class BatchProject(BatchOperatorMixin, Project):
    """Distinct returning-node positions, batched.

    Positional batches project straight off the returning column — the
    first (and only) place a ``//``-chain pipeline touches per-row
    Python values.
    """

    def _rows(self, ctx: ExecutionContext) -> Iterator[array]:
        seen = set()
        key = self.returning_key
        for batch in self.child.execute(ctx):
            self.stats.bump("bindings_in", len(batch))
            out = array("q")
            if isinstance(batch, ColumnBatch):
                for pos in batch.column(key):
                    if pos not in seen:
                        seen.add(pos)
                        out.append(pos)
            else:
                for binding in batch:
                    pos = binding[key]
                    if pos not in seen:
                        seen.add(pos)
                        out.append(pos)
            if out:
                yield out


class BatchLimit(BatchOperatorMixin, Limit):
    """Stop after ``k`` rows, truncating the final batch."""

    def _rows(self, ctx: ExecutionContext):
        k = self.k
        if k <= 0:
            return
        emitted = 0
        for batch in self.child.execute(ctx):
            remaining = k - emitted
            if len(batch) > remaining:
                batch = batch[:remaining]
            emitted += len(batch)
            yield batch
            if emitted >= k:
                return


#: The batch operator set, shaped like the Planner expects an operator
#: namespace to look (see ``repro.exec.planner.TUPLE_OPERATORS``).
BATCH_OPERATORS = SimpleNamespace(
    TagIndexScan=BatchTagIndexScan,
    PageSkipScan=BatchPageSkipScan,
    RootVerify=BatchRootVerify,
    AccessFilter=BatchAccessFilter,
    NPMMatch=BatchNPMMatch,
    STDJoin=BatchSTDJoin,
    PathCheck=BatchPathCheck,
    Project=BatchProject,
    Limit=BatchLimit,
)
