"""Execution context and statistics for the physical operator pipeline.

One :class:`ExecutionContext` is threaded through every operator of a
compiled plan. It carries the data source (in-memory document or block
store), the access labeling (any :class:`~repro.labeling.base.AccessLabeling`
backend — DOL, CAM, or naive), the tag index, the secure-evaluation
subject(s) and semantics, and the measurement state: the query-level
:class:`EvalStats` plus the per-subject path-accessibility oracle used by
view semantics.

:class:`EvalStats` and :class:`QueryResult` are defined here (rather than
in :mod:`repro.nok.engine`) so the operator layer does not depend on the
engine facade; the engine re-exports both under their historical names.

This module must not import from :mod:`repro.nok` at module level — the
``nok`` package imports the engine, which imports the execution layer.
The single ``nok`` dependency (:class:`~repro.nok.stdjoin.PathAccessIndex`)
is imported lazily when view semantics first needs it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import PageCorruptionError, ReproError
from repro.labeling.base import AccessLabeling
from repro.labeling.classes import normalize_subjects
from repro.labeling.runs import RunCache, RunList
from repro.secure.semantics import CHO, SEMANTICS, VIEW
from repro.storage.nokstore import NoKStore
from repro.xmltree.document import NO_NODE, Document

AccessFn = Optional[Callable[[int], bool]]
Subject = Union[int, Sequence[int]]


@dataclass
class EvalStats:
    """Measurements for one query evaluation."""

    wall_time: float = 0.0
    access_checks: int = 0
    candidates: int = 0
    candidates_skipped_by_header: int = 0
    #: candidates dropped by the run-list test in PageSkipScan (the
    #: hint-free bulk path — each was decided once at run-decode time)
    candidates_skipped_by_runs: int = 0
    #: per-node backend probes avoided because the answer came from a
    #: decoded accessibility run interval instead
    probes_saved: int = 0
    run_cache_hits: int = 0
    run_cache_misses: int = 0
    logical_page_reads: int = 0
    physical_page_reads: int = 0
    #: page accesses served from the decoded-page cache (no re-decode,
    #: and — when the raw frame was evicted — no physical read either)
    decoded_cache_hits: int = 0
    #: pages that failed checksum verification during this query
    #: (``strict=False`` only — strict evaluation raises instead)
    corrupted_pages: List[int] = field(default_factory=list)
    candidates_skipped_corrupt: int = 0
    #: access class id the subject set canonicalized to (None when the
    #: engine has no class directory, or the query is non-secure)
    access_class: Optional[int] = None
    #: 1 when the static pre-pass proved the class fully accessible and
    #: dropped the access filters from the plan
    static_allow: int = 0
    #: 1 when the static pre-pass proved the class fully denied and the
    #: plan answered empty without touching the store
    static_deny: int = 0
    #: 1 when the answer came from the result cache (execution skipped)
    result_cache_hits: int = 0
    #: pages decoded into columnar form during this query (store-backed
    #: only; a decoded-cache hit performs no new columnar decode)
    pages_decoded_columnar: int = 0
    #: array-kernel backend that executed the plan ("stdlib"/"numpy")
    kernel_backend: Optional[str] = None

    def as_dict(self) -> Dict[str, float]:
        report = dict(self.__dict__)
        report["corrupted_pages"] = list(self.corrupted_pages)
        return report


@dataclass
class QueryResult:
    """Answer of one evaluation: returning-node positions + statistics."""

    positions: List[int] = field(default_factory=list)
    n_bindings: int = 0
    stats: EvalStats = field(default_factory=EvalStats)

    @property
    def n_answers(self) -> int:
        """Distinct data nodes bound to the returning node."""
        return len(self.positions)


@dataclass
class OperatorStats:
    """Per-operator instrumentation collected while a plan runs.

    ``time`` is *inclusive*: the seconds spent inside this operator's
    iterator, children included (the convention of EXPLAIN ANALYZE).
    ``extra`` holds operator-specific counters, e.g. ``skipped`` for
    :class:`~repro.exec.operators.PageSkipScan`.
    """

    rows_out: int = 0
    time: float = 0.0
    executions: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def bump(self, counter: str, amount: int = 1) -> None:
        self.extra[counter] = self.extra.get(counter, 0) + amount


class ExecutionContext:
    """Shared state for one plan execution.

    Normalizes the ``subject`` argument (a single subject id, or a
    sequence of ids for user-level evaluation — rights are the union, per
    Section 4's footnote), owns the per-query :class:`EvalStats`, and
    lazily builds the ACCESS function appropriate to the semantics:

    - Cho semantics: node-level accessibility straight from the store's
      embedded codes (no extra I/O for backends with page hints) or the
      in-memory labeling;
    - view semantics: whole-root-path accessibility via the
      :class:`~repro.nok.stdjoin.PathAccessIndex` (the pruned-view model).

    ``labeling`` accepts any backend; the historical ``dol=`` keyword and
    ``.dol`` attribute remain as aliases.
    """

    def __init__(
        self,
        doc: Document,
        labeling: Optional[AccessLabeling] = None,
        store: Optional[NoKStore] = None,
        index=None,
        subject: Optional[Subject] = None,
        semantics: str = CHO,
        strict: bool = True,
        dol: Optional[AccessLabeling] = None,
        run_cache: Optional[RunCache] = None,
        class_id: Optional[int] = None,
    ):
        if labeling is None:
            labeling = dol
        elif dol is not None and dol is not labeling:
            raise ReproError("pass either labeling= or its alias dol=, not both")
        if semantics not in SEMANTICS:
            raise ReproError(f"unknown semantics {semantics!r}")
        if subject is not None and labeling is None:
            raise ReproError("secure evaluation requires an access labeling")
        self.doc = doc
        self.labeling = labeling
        self.store = store
        self.index = index
        self.semantics = semantics
        #: the shared normalization (engine, service, and CLI all route
        #: through it): duplicates and ordering collapse, so every cache
        #: keyed on the subject set downstream sees one canonical form
        self.subjects: Optional[Tuple[int, ...]] = normalize_subjects(subject)
        self.subject = (
            subject if isinstance(subject, int) or subject is None
            else self.subjects
        )
        #: access class the engine's directory resolved for the subject
        #: set (None for standalone contexts); when present it replaces
        #: the subject tuple in the run-cache key, so class-equivalent
        #: users share one decoded run list
        self.class_id = class_id
        self.strict = strict
        self.stats = EvalStats()
        self.stats.access_class = class_id
        self._access: AccessFn = None
        self._access_built = False
        self._path_index = None
        #: shared across queries when the engine passes its cache in; a
        #: standalone context gets a private one on first use
        self._run_cache = run_cache
        self._run_list: Optional[RunList] = None

    @property
    def dol(self) -> Optional[AccessLabeling]:
        """Historical alias for :attr:`labeling` (any backend, not only DOL)."""
        return self.labeling

    # -- data source -------------------------------------------------------

    @property
    def source(self):
        """Where navigation reads go: the block store when present."""
        return self.store if self.store is not None else self.doc

    @property
    def secure(self) -> bool:
        return self.subjects is not None

    # -- graceful degradation ----------------------------------------------

    def report_corruption(self, exc: PageCorruptionError) -> None:
        """Handle a corrupt page hit mid-query.

        In strict mode (the default) the error propagates: a query never
        silently computes over damaged data. With ``strict=False`` the
        page is quarantined on the store (so the scan does not re-read
        and re-fail on the same bytes per candidate), recorded in
        ``stats.corrupted_pages``, and the candidate is dropped — the
        query completes over the readable remainder and the caller can
        see exactly what was skipped.
        """
        if self.strict:
            raise exc
        page_id = exc.page_id
        if self.store is not None and page_id is not None:
            self.store.quarantine(page_id)
        if page_id not in self.stats.corrupted_pages:
            self.stats.corrupted_pages.append(page_id)
        self.stats.candidates_skipped_corrupt += 1

    def io_snapshot(self) -> Tuple[int, int, int, int]:
        """(logical, physical, decoded-cache-hit, columnar-decode) counts.

        Zeros without a store; the last two components are 0 for stores
        (and snapshots of stores) predating the decoded-page cache and
        the columnar decoder respectively.
        """
        if self.store is None:
            return (0, 0, 0, 0)
        backing = getattr(self.store, "_store", self.store)  # snapshot → store
        cache = getattr(backing, "decoded_cache", None)
        return (
            self.store.buffer.stats.logical_reads,
            self.store.pager.stats.reads,
            cache.stats.hits if cache is not None else 0,
            getattr(backing, "columnar_decodes", 0),
        )

    # -- access control ----------------------------------------------------

    @property
    def path_index(self):
        """Per-subject path-accessibility oracle (view semantics only)."""
        if self._path_index is None:
            from repro.nok.stdjoin import PathAccessIndex

            if self.subject is None:
                raise ReproError("path index requires a subject")
            self._path_index = PathAccessIndex(self.doc, self.labeling, self.subject)
        return self._path_index

    @property
    def access(self) -> AccessFn:
        """The ACCESS function of Algorithm 1 (None for non-secure plans).

        Every call is counted in ``stats.access_checks``.
        """
        if not self._access_built:
            self._access = self._build_access()
            self._access_built = True
        return self._access

    def neutralize_access(self) -> None:
        """Pin the ACCESS function to None (every check would pass).

        Called by the planner's static pre-pass when the access class is
        fully accessible: the plan then runs exactly like a non-secure
        one — no filters, and no per-child probes inside the NPM
        matcher — while :attr:`secure` stays true for accounting.
        """
        self._access = None
        self._access_built = True

    def run_list(self) -> Optional[RunList]:
        """The query's decoded accessibility run list (None if non-secure).

        Under Cho semantics this is the bulk decode of the labeling's
        node-level accessibility for the subject set; under view
        semantics, of *path* accessibility (a position's run flag says
        its whole root path is accessible). Always decoded from the
        in-memory labeling — the snapshot's frozen clone when store-backed
        — so building it performs no page I/O.

        Lists are memoized in the :class:`~repro.labeling.runs.RunCache`
        keyed by ``(epoch, access class, semantics)``: the store epoch
        when a snapshot is bound (a commit bumps it, invalidating by
        key), the labeling's ``runs_epoch`` otherwise. The access
        component is the :attr:`class_id` when the engine resolved one —
        class-equivalent subject sets share the entry — or the
        normalized subject tuple for standalone contexts. Hits and
        misses land in ``stats.run_cache_hits`` /
        ``stats.run_cache_misses``.
        """
        if self.subjects is None:
            return None
        if self._run_list is not None:
            return self._run_list
        if self._run_cache is None:
            self._run_cache = RunCache(capacity=8)
        access = self.class_id if self.class_id is not None else self.subjects
        if self.store is not None:
            key = ("store", self.store.epoch, access, self.semantics)
        else:
            labeling = self.labeling
            key = (
                "mem", id(labeling), labeling.runs_epoch,
                access, self.semantics,
            )
        built, hit = self._run_cache.get_or_build(key, self._decode_run_list)
        if hit:
            self.stats.run_cache_hits += 1
        else:
            self.stats.run_cache_misses += 1
        self._run_list = built
        return built

    def _decode_run_list(self) -> RunList:
        n = len(self.doc)
        if self.semantics == VIEW:
            deepest_blocked = self.path_index.deepest_blocked
            return RunList.from_flags(
                [blocked == NO_NODE for blocked in deepest_blocked]
            )
        return RunList.from_runs(
            self.labeling.access_runs_any(self.subjects, 0, n), 0, n
        )

    def _build_access(self) -> AccessFn:
        if self.subjects is None:
            return None
        stats = self.stats
        if self.semantics == VIEW:
            # View semantics: a node is usable iff its whole root path is
            # accessible (the pruned-view model).
            deepest_blocked = self.path_index.deepest_blocked

            def view_access(pos: int) -> bool:
                stats.access_checks += 1
                return deepest_blocked[pos] == NO_NODE

            return view_access

        # Cho semantics: node-level accessibility, answered from the
        # decoded run list — a bisect over run boundaries instead of a
        # per-node backend probe (CAM ancestor walk, store code read),
        # and zero I/O even store-backed. Each answered check is a probe
        # the backend never had to perform.
        run_list = self.run_list()

        def run_access(pos: int) -> bool:
            stats.access_checks += 1
            stats.probes_saved += 1
            return run_list.is_accessible(pos)

        return run_access
