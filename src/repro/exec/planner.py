"""Compiling twig queries into physical operator plans.

The :class:`Planner` turns a parsed pattern tree plus its NoK
decomposition into a tree of Volcano operators:

1. each NoK subtree becomes ``TagIndexScan → RootVerify → NPMMatch``;
2. every ancestor–descendant edge of the decomposition folds the child
   subtree's plan into its parent via an :class:`~repro.exec.operators.STDJoin`
   (children joined bottom-up, in decomposition-edge order);
3. the secure-semantics *rewrites* then transform the tree — security is
   a plan transformation, not an ``if`` branch inside an evaluator:

   - :func:`apply_cho_rewrite` (Cho et al.): inserts an
     :class:`~repro.exec.operators.AccessFilter` above every
     ``RootVerify`` (the ε-NoK pre-condition) and, over a block store, a
     :class:`~repro.exec.operators.PageSkipScan` above every
     ``TagIndexScan``;
   - :func:`apply_view_rewrite` (Gabillon–Bruno): same insertions — the
     context's ACCESS function is path-based under view semantics, so the
     filters prune the view — plus a
     :class:`~repro.exec.operators.PathCheck` above every ``STDJoin``
     (the ε-STD condition);

4. a :class:`~repro.exec.operators.Project` (distinct returning-node
   positions) and an optional :class:`~repro.exec.operators.Limit` cap
   the plan.

The resulting :class:`PhysicalPlan` executes lazily (`execute()` yields
positions as they are found), runs to completion (`run()` returns a
:class:`~repro.exec.context.QueryResult`), and renders itself
(`explain()` / `explain(analyze=True)` with per-operator row counts and
timings).
"""

from __future__ import annotations

from time import perf_counter
from types import SimpleNamespace
from typing import Callable, Iterator, List, Optional, Union

from repro.errors import ReproError
from repro.exec.batch import BATCH_OPERATORS
from repro.exec.context import ExecutionContext, QueryResult
from repro.exec.kernels import active_kernels
from repro.exec.operators import (
    AccessFilter,
    Limit,
    NPMMatch,
    Operator,
    PageSkipScan,
    PathCheck,
    Project,
    RootVerify,
    STDJoin,
    StaticEmpty,
    TagIndexScan,
)
from repro.nok.decompose import Decomposition, decompose
from repro.nok.pattern import CHILD, PatternTree, parse_query
from repro.secure.semantics import VIEW

#: The classic one-row-per-hop operator set. The batch set
#: (:data:`repro.exec.batch.BATCH_OPERATORS`) mirrors it name for name
#: with subclasses, so plan *shape* is identical in both modes and only
#: the row granularity differs.
TUPLE_OPERATORS = SimpleNamespace(
    TagIndexScan=TagIndexScan,
    PageSkipScan=PageSkipScan,
    RootVerify=RootVerify,
    AccessFilter=AccessFilter,
    NPMMatch=NPMMatch,
    STDJoin=STDJoin,
    PathCheck=PathCheck,
    Project=Project,
    Limit=Limit,
)

EXEC_MODES = {"batch": BATCH_OPERATORS, "tuple": TUPLE_OPERATORS}


class PhysicalPlan:
    """A compiled, executable operator tree plus its execution context."""

    def __init__(
        self,
        root: Operator,
        ctx: ExecutionContext,
        pattern: PatternTree,
        decomposition: Decomposition,
        prepass: Optional[str] = None,
    ):
        self.root = root
        self.ctx = ctx
        self.pattern = pattern
        self.decomposition = decomposition
        self.executed = False
        #: static pre-evaluation verdict: "allow" (filters dropped),
        #: "deny" (plan answers empty with no store I/O), or None
        self.prepass = prepass

    def operators(self) -> List[Operator]:
        """All plan operators, preorder."""
        return list(self.root.walk())

    def execute(self) -> Iterator[int]:
        """Stream distinct returning-node positions as they are found.

        Page-read deltas and wall time are folded into ``ctx.stats`` when
        the stream is exhausted or closed; ``wall_time`` is the root
        operator's inclusive time (consumer think-time excluded).
        """
        self.executed = True
        io_before = self.ctx.io_snapshot()
        self.ctx.stats.kernel_backend = active_kernels().name
        try:
            rows = self.root.execute(self.ctx)
            if getattr(self.root, "emits_batches", False):
                for batch in rows:
                    yield from batch
            else:
                yield from rows
        finally:
            io_after = self.ctx.io_snapshot()
            stats = self.ctx.stats
            stats.logical_page_reads += io_after[0] - io_before[0]
            stats.physical_page_reads += io_after[1] - io_before[1]
            stats.decoded_cache_hits += io_after[2] - io_before[2]
            stats.pages_decoded_columnar += io_after[3] - io_before[3]
            stats.wall_time = self.root.stats.time

    def run(self) -> QueryResult:
        """Execute to completion and package a :class:`QueryResult`."""
        started = perf_counter()
        positions = sorted(self.execute())
        elapsed = perf_counter() - started
        stats = self.ctx.stats
        if stats.wall_time == 0.0:
            stats.wall_time = elapsed
        n_bindings = self._bindings_seen()
        return QueryResult(
            positions=positions, n_bindings=n_bindings, stats=stats
        )

    def _bindings_seen(self) -> int:
        for op in self.root.walk():
            if isinstance(op, Project):
                return op.stats.extra.get("bindings_in", 0)
        return 0

    def explain(self, analyze: bool = False) -> str:
        """Render the plan tree, with live counters when ``analyze``."""
        lines: List[str] = []
        if self.prepass == "allow":
            lines.append(
                "static pre-pass: access class fully accessible"
                " -- access filters dropped"
            )
        elif self.prepass == "deny":
            lines.append(
                "static pre-pass: access class fully denied"
                " -- empty answer, no store reads"
            )
        self._render(self.root, 0, analyze, lines)
        if analyze:
            stats = self.ctx.stats
            backend = stats.kernel_backend or active_kernels().name
            lines.append(
                f"kernels: {backend}"
                f" (columnar pages decoded={stats.pages_decoded_columnar})"
            )
        return "\n".join(lines)

    def _render(
        self, op: Operator, depth: int, analyze: bool, lines: List[str]
    ) -> None:
        detail = op.describe()
        name = op.name
        if getattr(op, "emits_batches", False):
            name += "[batch]"
        text = "  " * depth + ("-> " if depth else "") + name
        if detail:
            text += f" [{detail}]"
        if analyze:
            text += (
                f"  (rows={op.stats.rows_out}"
                f" time={op.stats.time * 1000.0:.3f}ms"
            )
            for counter, value in sorted(op.stats.extra.items()):
                text += f" {counter}={value}"
            batches = op.stats.extra.get("batches", 0)
            if batches:
                text += f" rows/batch={op.stats.rows_out / batches:.1f}"
            text += ")"
        lines.append(text)
        for child in op.children:
            self._render(child, depth + 1, analyze, lines)


# -- secure-semantics rewrites -------------------------------------------------


def _transform(op: Operator, fn: Callable[[Operator], Operator]) -> Operator:
    """Bottom-up tree rewrite: children first, then the node itself."""
    op.children = [_transform(child, fn) for child in op.children]
    return fn(op)


def apply_cho_rewrite(
    root: Operator, ctx: ExecutionContext, ops=TUPLE_OPERATORS
) -> Operator:
    """Cho et al. secure semantics as a plan transformation.

    Every candidate root gains the ε-NoK ACCESS pre-condition
    (:class:`AccessFilter`); over a block store every scan gains
    header-driven page skipping (:class:`PageSkipScan`). Joins need
    nothing extra — every binding delivered by ε-NoK already passed its
    node-level check. ``ops`` selects the operator set to insert (tuple
    or batch), matching whichever set built the tree.
    """

    def rewrite(op: Operator) -> Operator:
        if isinstance(op, TagIndexScan) and ctx.store is not None:
            return ops.PageSkipScan(op)
        if isinstance(op, RootVerify):
            return ops.AccessFilter(op)
        return op

    return _transform(root, rewrite)


def apply_view_rewrite(
    root: Operator, ctx: ExecutionContext, ops=TUPLE_OPERATORS
) -> Operator:
    """Gabillon–Bruno view semantics as a plan transformation.

    Same filter/skip insertions as the Cho rewrite — but the context's
    ACCESS function is *path* accessibility, so the filters prune the
    view — plus the ε-STD :class:`PathCheck` above every structural join.
    """

    def rewrite(op: Operator) -> Operator:
        if isinstance(op, TagIndexScan) and ctx.store is not None:
            return ops.PageSkipScan(op)
        if isinstance(op, RootVerify):
            return ops.AccessFilter(op)
        if isinstance(op, STDJoin):
            return ops.PathCheck(op)
        return op

    return _transform(root, rewrite)


class Planner:
    """Compiles pattern trees into :class:`PhysicalPlan` objects.

    ``exec_mode`` selects the operator set: ``"batch"`` (the default)
    builds the vectorized operators of :mod:`repro.exec.batch`,
    ``"tuple"`` the classic row-at-a-time operators — same plan shape
    either way, kept selectable for differential testing.
    """

    def __init__(self, ctx: ExecutionContext, exec_mode: str = "batch"):
        if exec_mode not in EXEC_MODES:
            raise ReproError(f"unknown exec_mode {exec_mode!r}")
        self.ctx = ctx
        self.exec_mode = exec_mode
        self.ops = EXEC_MODES[exec_mode]

    def plan(
        self,
        query: Union[str, PatternTree],
        ordered: bool = False,
        limit: Optional[int] = None,
    ) -> PhysicalPlan:
        """Compile a query (string or pattern tree) into a physical plan."""
        pattern = parse_query(query) if isinstance(query, str) else query
        dec = decompose(pattern)
        return self.plan_from(pattern, dec, ordered=ordered, limit=limit)

    def plan_from(
        self,
        pattern: PatternTree,
        dec: Decomposition,
        ordered: bool = False,
        limit: Optional[int] = None,
    ) -> PhysicalPlan:
        """Build a fresh operator tree from pre-compiled artifacts.

        ``pattern`` and ``dec`` are the data-independent halves of a
        compile (what the :class:`~repro.exec.plancache.PlanCache`
        stores, shared read-only across plans); the operator tree is
        stateful and therefore always built anew.

        For secure plans a static pre-evaluation pass inspects the
        class's decoded run list first: a fully accessible class needs
        no access machinery (the rewrite is skipped — every filter would
        pass every row), and a fully denied class compiles to a single
        :class:`~repro.exec.operators.StaticEmpty` root that answers
        without touching the store. Both verdicts land in ``EvalStats``
        (``static_allow`` / ``static_deny``) and in ``explain()``.
        """
        prepass = self._static_prepass()
        if prepass == "deny":
            return PhysicalPlan(
                StaticEmpty(), self.ctx, pattern, dec, prepass=prepass
            )
        root = self._plan_subtree(dec, 0, pattern, ordered)
        if prepass != "allow":
            root = self._apply_semantics(root)
        root = self.ops.Project(root, pattern.returning_node)
        if limit is not None:
            root = self.ops.Limit(root, limit)
        return PhysicalPlan(root, self.ctx, pattern, dec, prepass=prepass)

    def _plan_subtree(
        self,
        dec: Decomposition,
        index: int,
        pattern: PatternTree,
        ordered: bool,
    ) -> Operator:
        subtree = dec.subtrees[index]
        anchored = index == 0 and pattern.root_axis == CHILD
        ops = self.ops
        op: Operator = ops.TagIndexScan(subtree.root, anchored=anchored)
        op = ops.RootVerify(op, subtree.root)
        op = ops.NPMMatch(op, subtree, ordered)
        for edge in dec.children_of(index):
            child_plan = self._plan_subtree(dec, edge.child_subtree, pattern, ordered)
            op = ops.STDJoin(
                op,
                child_plan,
                edge.parent_node,
                dec.subtrees[edge.child_subtree].root,
            )
        return op

    def _static_prepass(self) -> Optional[str]:
        """Class-level allow/deny decided before any operator is built.

        The verdict reads the query's decoded run list *through the run
        cache* (so repeated compiles of one epoch share the decode and
        the hit/miss accounting stays honest): all positions accessible
        means every access filter would pass every row under either
        semantics — drop them; none accessible means no binding can
        survive — the plan is statically empty. Partial accessibility
        returns None and the normal rewrites apply.
        """
        ctx = self.ctx
        if not ctx.secure:
            return None
        run_list = ctx.run_list()
        if run_list is None or run_list.hi <= run_list.lo:
            return None
        accessible = run_list.count_accessible()
        if accessible == 0:
            ctx.stats.static_deny = 1
            return "deny"
        if accessible == run_list.hi - run_list.lo:
            ctx.stats.static_allow = 1
            ctx.neutralize_access()
            return "allow"
        return None

    def _apply_semantics(self, root: Operator) -> Operator:
        if not self.ctx.secure:
            return root
        if self.ctx.semantics == VIEW:
            return apply_view_rewrite(root, self.ctx, self.ops)
        return apply_cho_rewrite(root, self.ctx, self.ops)
