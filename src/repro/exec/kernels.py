"""Array-kernel registry: the compute primitives behind batch execution.

The vectorized operators (:mod:`repro.exec.batch`) and the run-list
intersection (:meth:`repro.labeling.runs.RunList.filter_positions`) hand
their inner loops to this module. Every primitive takes and returns
plain ``array('q')`` / ``array('H')`` buffers, so two interchangeable
implementations can sit behind one interface:

- :class:`StdlibKernels` — pure stdlib (``bisect`` galloping merges and
  slice extends), always available, the default;
- :class:`NumpyKernels` — the same primitives as zero-copy
  ``np.frombuffer`` views plus vectorized ``searchsorted``/boolean
  masking, auto-selected when numpy is importable.

Both backends are held to **byte-identical answers**: each primitive is
a pure function of sorted integer arrays, with one defined output order
(the input order), so the differential suite can assert
``stdlib(x) == numpy(x)`` elementwise for arbitrary inputs — and the
query-level suite asserts identical positions *and* statistics whichever
backend is active.

Selection: the ``REPRO_KERNELS`` environment variable (``stdlib``,
``numpy``, or ``auto``) wins; otherwise numpy is used when importable.
The registry resolves once and caches; :func:`set_backend` overrides it
explicitly (tests use this to pin a leg of the differential matrix).

This module must stay import-light (stdlib + optional numpy only): it is
imported lazily from :mod:`repro.labeling.runs`, which sits below the
execution layer in the import graph.
"""

from __future__ import annotations

import os
from array import array
from bisect import bisect_left, bisect_right
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "StdlibKernels",
    "NumpyKernels",
    "active_kernels",
    "available_backends",
    "set_backend",
]


class StdlibKernels:
    """Pure-stdlib kernels: galloping bisect merges over ``array`` buffers."""

    name = "stdlib"

    def filter_runs(
        self, positions: array, starts: array, flags: bytes, hi: int
    ) -> array:
        """Intersect a sorted position batch with accessibility runs.

        ``starts``/``flags`` describe maximal runs (``flags[i]`` governs
        ``[starts[i], starts[i+1])``, the last run ending at ``hi``).
        A linear galloping merge: each step gallops to the run holding
        the next position, then to the batch prefix inside that run —
        whole accessible prefixes move with one slice extend.
        """
        out = array("q")
        n = len(positions)
        n_runs = len(starts)
        if n == 0 or n_runs == 0:
            return out
        ri = 0
        i = 0
        while i < n:
            ri = bisect_right(starts, positions[i], ri) - 1
            if ri < 0:
                ri = 0
            run_end = starts[ri + 1] if ri + 1 < n_runs else hi
            j = bisect_left(positions, run_end, i)
            if flags[ri] and j > i:
                out.extend(positions[i:j])
            i = j
        return out

    def take_eq(
        self, positions: array, values: Sequence[int], target: int, base: int = 0
    ) -> array:
        """Positions whose ``values[pos - base]`` equals ``target``."""
        return array(
            "q", [pos for pos in positions if values[pos - base] == target]
        )

    def join_ranges(
        self, anchors: array, ends: array, haystack: array
    ) -> Tuple[List[int], List[int]]:
        """Per-anchor slice bounds of ``haystack`` in ``(anchor, end)``.

        ``haystack`` is sorted; the returned ``(los, his)`` delimit, for
        each anchor, the rows strictly inside its subtree interval.
        """
        los: List[int] = []
        his: List[int] = []
        for anchor, end in zip(anchors, ends):
            lo = bisect_right(haystack, anchor)
            los.append(lo)
            his.append(bisect_left(haystack, end, lo))
        return los, his


_STDLIB = StdlibKernels()


class NumpyKernels:
    """Numpy kernels: zero-copy views + vectorized searchsorted/masking.

    Outputs are materialized back into ``array('q')`` so downstream code
    (and the differential suite) sees exactly the stdlib types.
    """

    name = "numpy"

    def __init__(self) -> None:
        import numpy

        self._np = numpy

    def _as_i64(self, buf: array):
        np = self._np
        if len(buf) == 0:
            return np.empty(0, dtype=np.int64)
        return np.frombuffer(buf, dtype=np.int64)

    def filter_runs(
        self, positions: array, starts: array, flags: bytes, hi: int
    ) -> array:
        np = self._np
        out = array("q")
        if len(positions) == 0 or len(starts) == 0:
            return out
        pos = self._as_i64(positions)
        idx = np.searchsorted(self._as_i64(starts), pos, side="right") - 1
        np.maximum(idx, 0, out=idx)
        keep = np.frombuffer(flags, dtype=np.uint8)[idx] != 0
        out.frombytes(pos[keep].tobytes())
        return out

    def take_eq(
        self, positions: array, values: Sequence[int], target: int, base: int = 0
    ) -> array:
        np = self._np
        out = array("q")
        if len(positions) == 0:
            return out
        if isinstance(values, array) and values.typecode in ("H", "I", "q", "Q"):
            vals = np.frombuffer(values, dtype=np.dtype(values.typecode))
        else:
            # non-buffer value sequences (plain lists) take the stdlib path
            return _STDLIB.take_eq(positions, values, target, base)
        pos = self._as_i64(positions)
        keep = vals[pos - base] == target
        out.frombytes(pos[keep].tobytes())
        return out

    def join_ranges(
        self, anchors: array, ends: array, haystack: array
    ) -> Tuple[List[int], List[int]]:
        np = self._np
        hay = self._as_i64(haystack)
        los = np.searchsorted(hay, self._as_i64(anchors), side="right")
        his = np.searchsorted(hay, self._as_i64(ends), side="left")
        return los.tolist(), his.tolist()


def _numpy_importable() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def available_backends() -> List[str]:
    """Backends this process could run (stdlib always; numpy if importable)."""
    backends = ["stdlib"]
    if _numpy_importable():
        backends.append("numpy")
    return backends


def _resolve(choice: Optional[str] = None):
    choice = choice or os.environ.get("REPRO_KERNELS", "auto")
    if choice == "stdlib":
        return StdlibKernels()
    if choice == "numpy":
        return NumpyKernels()  # ImportError surfaces: an explicit ask must fail
    if choice == "auto":
        if _numpy_importable():
            return NumpyKernels()
        return StdlibKernels()
    raise ValueError(
        f"unknown kernel backend {choice!r} (choose stdlib, numpy, or auto)"
    )


_active = None


def active_kernels():
    """The process-wide kernel backend (resolved once, then cached)."""
    global _active
    if _active is None:
        _active = _resolve()
    return _active


def set_backend(choice: Optional[str] = None):
    """Pin (or with ``None``/"auto" re-resolve) the active backend.

    Returns the newly active kernels object. Tests use this to run the
    differential matrix under each backend explicitly.
    """
    global _active
    _active = _resolve(choice)
    return _active
