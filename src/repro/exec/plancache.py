"""A thread-safe cache of compiled query plans (the data-independent part).

Compiling a twig query has two halves. Parsing the query string into a
:class:`~repro.nok.pattern.PatternTree` and decomposing it into NoK
subtrees (:func:`~repro.nok.decompose.decompose`) depend only on the
query text — they are immutable once built and safely shared by any
number of concurrent executions. Building the *operator tree* is cheap
but stateful (operators carry per-run counters and iterators), so it is
re-done per execution from the cached halves.

The cache therefore stores ``(pattern, decomposition)`` pairs under a
:class:`PlanKey` of (query text, semantics, **access class id**, ordered
flag) — the full identity of a compiled plan shape, keyed the way a
serving workload actually repeats: class-equivalent subject sets (two
users whose rights collapse to the same accessibility behavior, see
:mod:`repro.labeling.classes`) share one entry, so cache population is
bounded by the number of *classes*, not the number of users. Engines
without a labeling backend (storeless/in-memory non-secure evaluation)
have no class directory to consult; for them the compatibility path keys
on the normalized subject tuple instead — same shape, same sharing
semantics, just without the cross-subject collapse. Entries are
immutable, eviction is LRU, and hit/miss/eviction counters feed the
service metrics. Because cached artifacts are data-independent, an
accessibility update does **not** invalidate them: a plan compiled
before the update, executed against a post-update snapshot, reads the
new labeling through its :class:`~repro.exec.context.ExecutionContext`.
(Class ids are per-epoch, but a cross-epoch id collision is harmless
here — the cached halves depend only on the query text.) Only
:meth:`clear` (e.g. on structural document replacement) empties the
cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple, Union

from repro.labeling.classes import normalize_subjects

#: (query text, semantics, access key, ordered) where the access key is
#: an int class id (labeling-backed engines), a normalized subject tuple
#: (the no-labeling compatibility path), or None (non-secure).
AccessKey = Union[None, int, Tuple[int, ...]]
PlanKey = Tuple[str, str, AccessKey, bool]


def plan_key(
    query: str,
    semantics: str,
    subject,
    ordered: bool,
    class_id: Optional[int] = None,
) -> PlanKey:
    """Normalize a compile request into a hashable cache key.

    With a ``class_id`` (resolved by the engine's
    :class:`~repro.labeling.classes.ClassDirectory`) the key carries the
    access class — the canonical scheme. Without one, ``subject`` is
    normalized via :func:`~repro.labeling.classes.normalize_subjects`
    (``None`` / single id / iterable; duplicates and order collapse), so
    equal subject sets still hit the same entry. An int class id and a
    subject tuple can never collide — the types differ.
    """
    if class_id is not None:
        return (query, semantics, class_id, ordered)
    return (query, semantics, normalize_subjects(subject), ordered)


class PlanCache:
    """Bounded LRU map from :data:`PlanKey` to (pattern, decomposition).

    All methods are safe to call from any number of threads; the single
    internal lock is held only for dictionary operations (never across a
    parse or decompose, so concurrent misses may both compile — the
    second insert wins harmlessly, both artifacts being equivalent).
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("plan cache needs capacity >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[PlanKey, tuple]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: PlanKey):
        """The cached (pattern, decomposition) for ``key``, or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: PlanKey, pattern, decomposition) -> None:
        with self._lock:
            self._entries[key] = (pattern, decomposition)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters survive; see :meth:`reset_stats`)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, float]:
        """Hit/miss counters and the derived hit ratio (0.0 when unused)."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_ratio": (self.hits / total) if total else 0.0,
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PlanCache(entries={len(self)}, capacity={self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
