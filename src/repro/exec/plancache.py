"""A thread-safe cache of compiled query plans (the data-independent part).

Compiling a twig query has two halves. Parsing the query string into a
:class:`~repro.nok.pattern.PatternTree` and decomposing it into NoK
subtrees (:func:`~repro.nok.decompose.decompose`) depend only on the
query text — they are immutable once built and safely shared by any
number of concurrent executions. Building the *operator tree* is cheap
but stateful (operators carry per-run counters and iterators), so it is
re-done per execution from the cached halves.

The cache therefore stores ``(pattern, decomposition)`` pairs under a
:class:`PlanKey` of (query text, semantics, subject set, ordered flag) —
the full identity of a compiled plan shape, matching how a serving
workload repeats requests. Entries are immutable, eviction is LRU, and
hit/miss counters feed the service metrics. Because cached artifacts are
data-independent, an accessibility update does **not** invalidate them:
a plan compiled before the update, executed against a post-update
snapshot, reads the new labeling through its
:class:`~repro.exec.context.ExecutionContext`. Only :meth:`clear` (e.g.
on structural document replacement) empties the cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

#: (query text, semantics, subjects or None, ordered)
PlanKey = Tuple[str, str, Optional[Tuple[int, ...]], bool]


def plan_key(
    query: str,
    semantics: str,
    subject,
    ordered: bool,
) -> PlanKey:
    """Normalize a compile request into a hashable cache key.

    ``subject`` may be ``None``, a single id, or a sequence of ids (the
    user-level union); sequences normalize to a tuple so equal subject
    sets hit the same entry regardless of container type.
    """
    if subject is None:
        subjects: Optional[Tuple[int, ...]] = None
    elif isinstance(subject, int):
        subjects = (subject,)
    else:
        subjects = tuple(subject)
    return (query, semantics, subjects, ordered)


class PlanCache:
    """Bounded LRU map from :data:`PlanKey` to (pattern, decomposition).

    All methods are safe to call from any number of threads; the single
    internal lock is held only for dictionary operations (never across a
    parse or decompose, so concurrent misses may both compile — the
    second insert wins harmlessly, both artifacts being equivalent).
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("plan cache needs capacity >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[PlanKey, tuple]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: PlanKey):
        """The cached (pattern, decomposition) for ``key``, or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: PlanKey, pattern, decomposition) -> None:
        with self._lock:
            self._entries[key] = (pattern, decomposition)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (counters survive; see :meth:`reset_stats`)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, float]:
        """Hit/miss counters and the derived hit ratio (0.0 when unused)."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_ratio": (self.hits / total) if total else 0.0,
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PlanCache(entries={len(self)}, capacity={self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
