"""A bounded per-epoch cache of complete query answers.

The third cache layer of the class-canonicalized hot path (below the
plan cache's compile artifacts and the run cache's decoded accessibility
intervals): when two requests agree on the query text, the access class,
the semantics/ordered/limit knobs, *and* the data epoch, their answers
are byte-for-byte identical — the second can skip execution entirely.

Keys are built by the engine as ``(epoch key, query, access key,
semantics, ordered, limit)``:

- the *epoch key* is ``("store", epoch)`` for store-backed engines or
  ``("mem", id(labeling), runs_epoch)`` in memory — unlike the plan
  cache, answers are data-dependent, so the epoch MUST be part of the
  key; a commit is the invalidation, and dead-epoch entries age out of
  the LRU;
- the *access key* is the class id from the
  :class:`~repro.labeling.classes.ClassDirectory` (or the normalized
  subject tuple on the compatibility path), so class-equivalent users
  share one entry: population is bounded by #classes x #queries, never
  by #users.

Result caching is **opt-in per call** (the engine default is off):
repeat-evaluation microbenchmarks and cache-accounting tests rely on
re-execution, and only the serving layer
(:class:`~repro.server.service.QueryService`) and the class-collapse
bench know their workloads are read-mostly enough to want it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, List, Optional, Tuple

from repro.errors import ReproError

#: Cached payload: (sorted answer positions, bindings seen).
ResultEntry = Tuple[List[int], int]


class ResultCache:
    """Thread-safe LRU from (epoch, query, class, knobs) to answers.

    Stored positions are copied on the way in and out, so a caller
    mutating its result list cannot poison the cache.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ReproError("result cache needs capacity >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, ResultEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable) -> Optional[ResultEntry]:
        """The cached (positions, n_bindings) for ``key``, or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return (list(entry[0]), entry[1])

    def put(self, key: Hashable, positions: List[int], n_bindings: int) -> None:
        with self._lock:
            self._entries[key] = (list(positions), n_bindings)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, float]:
        with self._lock:
            total = self._hits + self._misses
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_ratio": (self._hits / total) if total else 0.0,
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ResultCache(entries={len(self)}, capacity={self.capacity})"
        )
