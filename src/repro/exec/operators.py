"""Volcano-style physical operators for secure NoK query evaluation.

Each operator is an iterator factory: :meth:`Operator.execute` returns a
generator that pulls rows lazily from its children, so results stream out
of the plan incrementally — a :class:`Limit` near the root stops the
entire pipeline after ``k`` rows, touching only the candidates, pages and
access checks needed to produce them.

Row types are uniform per plan edge:

- scan-level operators (:class:`TagIndexScan`, :class:`PageSkipScan`,
  :class:`RootVerify`, :class:`AccessFilter`) produce candidate document
  positions (``int``);
- :class:`NPMMatch` turns candidate positions into binding dicts
  (``id(pattern node) -> position``);
- :class:`STDJoin` and :class:`PathCheck` consume and produce bindings;
- :class:`Project` reduces bindings to distinct returning-node positions.

Every operator records :class:`~repro.exec.context.OperatorStats` (rows
out, inclusive time, operator-specific counters), which ``EXPLAIN
ANALYZE`` renders per plan node.
"""

from __future__ import annotations

import time
from bisect import bisect_right
from typing import Dict, Iterator, List

from repro.errors import PageCorruptionError
from repro.exec.context import ExecutionContext, OperatorStats
from repro.nok.decompose import NoKSubtree
from repro.nok.matcher import Binding, match_nok_subtree
from repro.nok.pattern import PatternNode

Row = object


class Operator:
    """Base class: a plan node with children, stats, and a row generator."""

    name = "Operator"

    def __init__(self, *children: "Operator"):
        self.children: List[Operator] = list(children)
        self.stats = OperatorStats()

    @property
    def child(self) -> "Operator":
        return self.children[0]

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        """Open the operator and return its (instrumented) row stream."""
        self.stats.executions += 1
        return self._instrumented(ctx)

    def _instrumented(self, ctx: ExecutionContext) -> Iterator[Row]:
        rows = self._rows(ctx)
        while True:
            started = time.perf_counter()
            try:
                row = next(rows)
            except StopIteration:
                self.stats.time += time.perf_counter() - started
                return
            self.stats.time += time.perf_counter() - started
            self.stats.rows_out += 1
            yield row

    def _rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        raise NotImplementedError

    def describe(self) -> str:
        """Operator-specific detail shown in EXPLAIN output."""
        return ""

    def walk(self) -> Iterator["Operator"]:
        """This operator and all descendants, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()


class StaticEmpty(Operator):
    """A plan root proven empty at compile time (the static deny pre-pass).

    Emitted by the :class:`~repro.exec.planner.Planner` when the subject
    set's access class is fully denied over the document: the decoded
    run list has no accessible position, so no candidate could survive
    an access filter. The operator yields nothing — no scan, no page
    reads, no access checks. ``emits_batches`` stays False, which is
    correct in both execution modes (an empty stream has no batches).
    """

    name = "StaticEmpty"

    def __init__(self, reason: str = "access class fully denied"):
        super().__init__()
        self.reason = reason

    def _rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        return iter(())

    def describe(self) -> str:
        return self.reason


class TagIndexScan(Operator):
    """Candidate positions for one NoK subtree root, from the tag index.

    ``anchored=True`` marks the query root under a ``/`` root axis: the
    only candidate is document position 0 (checked against the tag test).
    Wildcard roots scan every position; value-constrained roots use the
    (tag, text) index. Every emitted candidate is counted in
    ``EvalStats.candidates``.
    """

    name = "TagIndexScan"

    def __init__(self, pnode: PatternNode, anchored: bool = False):
        super().__init__()
        self.pnode = pnode
        self.anchored = anchored

    def _rows(self, ctx: ExecutionContext) -> Iterator[int]:
        pnode, doc, stats = self.pnode, ctx.doc, ctx.stats
        if self.anchored:
            if pnode.matches(doc.tag_name(0), doc.text(0)):
                stats.candidates += 1
                yield 0
            return
        if pnode.tag == "*":
            positions: "range | List[int]" = range(len(doc))
        elif pnode.value is not None:
            positions = ctx.index.positions_with_value(pnode.tag, pnode.value)
        else:
            positions = ctx.index.positions(pnode.tag)
        for pos in positions:
            stats.candidates += 1
            yield pos

    def describe(self) -> str:
        detail = f"<{self.pnode.tag}>"
        if self.pnode.value is not None:
            detail += f" ={self.pnode.value!r}"
        if self.anchored:
            detail += " anchored@root"
        return detail


class PageSkipScan(Operator):
    """Header-driven page skipping (Section 3.3) over a candidate stream.

    A candidate whose page header denies every subject and has a clear
    change bit is inaccessible without reading the page — it is dropped
    here at zero I/O cost. Inserted by the secure rewrites only when the
    plan runs over a :class:`~repro.storage.nokstore.NoKStore`.

    The header test requires a labeling backend with page hints (the
    DOL's embedded transition codes). Hint-free backends (CAM, naive)
    take the bulk route instead: each candidate is tested against the
    query's decoded accessibility run list — every node was decided once
    at run-decode time, so no candidate reaches :class:`AccessFilter`
    only to be re-probed and rejected. The quarantine check (degraded
    mode) applies either way.
    """

    name = "PageSkipScan"

    def _rows(self, ctx: ExecutionContext) -> Iterator[int]:
        store, subjects = ctx.store, ctx.subjects
        has_hints = store.has_page_hints
        run_list = None if has_hints else ctx.run_list()
        for pos in self.child.execute(ctx):
            page_id = store.page_of(pos)
            if not ctx.strict and page_id in store.quarantined:
                # Degraded mode: the page already failed verification
                # this query; skip its candidates without re-reading it.
                ctx.stats.candidates_skipped_corrupt += 1
                self.stats.bump("skipped_corrupt")
                continue
            if has_hints and store.page_fully_inaccessible_any(page_id, subjects):
                ctx.stats.candidates_skipped_by_header += 1
                self.stats.bump("skipped")
                continue
            if run_list is not None and not run_list.is_accessible(pos):
                ctx.stats.candidates_skipped_by_runs += 1
                ctx.stats.probes_saved += 1
                self.stats.bump("skipped_runs")
                continue
            yield pos

    def describe(self) -> str:
        return "header table"


class RootVerify(Operator):
    """Verify candidates against the data source itself.

    The index only supplied a position; re-checking the tag/value and
    attribute tests against the source loads the candidate's page —
    exactly the read a NoK evaluator performs before matching can start.
    """

    name = "RootVerify"

    def __init__(self, child: Operator, pnode: PatternNode):
        super().__init__(child)
        self.pnode = pnode

    def _rows(self, ctx: ExecutionContext) -> Iterator[int]:
        pnode, source = self.pnode, ctx.source
        for pos in self.child.execute(ctx):
            try:
                if not pnode.matches(source.tag_name(pos), source.text(pos)):
                    continue
                if pnode.attr_tests and not pnode.matches_attrs(
                    source.attrs_of(pos)
                ):
                    continue
            except PageCorruptionError as exc:
                ctx.report_corruption(exc)  # raises when ctx.strict
                continue
            yield pos

    def describe(self) -> str:
        return f"<{self.pnode.tag}>"


class AccessFilter(Operator):
    """The ε-NoK ACCESS pre-condition on candidate roots (Algorithm 1).

    Under Cho semantics the check is node-level accessibility; under view
    semantics the context's ACCESS function is already path-based, making
    this the Gabillon–Bruno pruned-view test. Inserted only by the secure
    rewrites — non-secure plans carry no filter at all.
    """

    name = "AccessFilter"

    def _rows(self, ctx: ExecutionContext) -> Iterator[int]:
        access = ctx.access
        for pos in self.child.execute(ctx):
            try:
                granted = access(pos)
            except PageCorruptionError as exc:
                ctx.report_corruption(exc)  # raises when ctx.strict
                continue
            if granted:
                yield pos
            else:
                self.stats.bump("denied")

    def describe(self) -> str:
        return "ε-NoK pre-condition"


class NPMMatch(Operator):
    """ε-NoK next-of-kin pattern matching of one NoK subtree.

    For each (verified, access-checked) candidate root it enumerates the
    output-node bindings via :func:`~repro.nok.matcher.match_nok_subtree`
    and streams them out one by one. With ``ordered=True`` pattern
    children must bind to data siblings in pattern order.
    """

    name = "NPMMatch"

    def __init__(self, child: Operator, subtree: NoKSubtree, ordered: bool = False):
        super().__init__(child)
        self.subtree = subtree
        self.ordered = ordered

    def _rows(self, ctx: ExecutionContext) -> Iterator[Binding]:
        source, subtree, ordered = ctx.source, self.subtree, self.ordered
        access = ctx.access
        for pos in self.child.execute(ctx):
            try:
                yield from match_nok_subtree(source, subtree, pos, access, ordered)
            except PageCorruptionError as exc:
                # The match walked onto a corrupt page: drop this
                # candidate's (possibly partial) bindings.
                ctx.report_corruption(exc)  # raises when ctx.strict

    def describe(self) -> str:
        detail = f"subtree {self.subtree.index} root <{self.subtree.root.tag}>"
        if self.ordered:
            detail += " ordered"
        return detail


class STDJoin(Operator):
    """Structural ancestor–descendant join of two binding streams.

    The descendant (build) side is materialized and grouped by the
    child-subtree root's position; the ancestor (probe) side then streams
    through, each binding probing the sorted descendant positions with
    the preorder interval test ``a < d < subtree_end(a)`` — producing
    exactly the proper-AD pairs of Stack-Tree-Desc while keeping the
    probe side fully pipelined. Duplicate merged bindings are suppressed,
    matching the engine's historical join semantics.
    """

    name = "STDJoin"

    def __init__(
        self,
        left: Operator,
        right: Operator,
        parent_node: PatternNode,
        child_root: PatternNode,
    ):
        super().__init__(left, right)
        self.parent_node = parent_node
        self.child_root = child_root
        self.parent_key = id(parent_node)
        self.child_key = id(child_root)

    def _rows(self, ctx: ExecutionContext) -> Iterator[Binding]:
        descendants_of: Dict[int, List[Binding]] = {}
        for binding in self.children[1].execute(ctx):
            descendants_of.setdefault(binding[self.child_key], []).append(binding)
        self.stats.bump("build_rows", sum(map(len, descendants_of.values())))
        if not descendants_of:
            return  # empty build side: never pull the probe side
        desc_positions = sorted(descendants_of)
        subtree_end = ctx.doc.subtree_end
        parent_key = self.parent_key
        seen = set()
        for m in self.children[0].execute(ctx):
            anchor = m[parent_key]
            end = subtree_end(anchor)
            lo = bisect_right(desc_positions, anchor)
            for i in range(lo, len(desc_positions)):
                d = desc_positions[i]
                if d >= end:
                    break
                for dm in descendants_of[d]:
                    combined = {**m, **dm}
                    key = frozenset(combined.items())
                    if key not in seen:
                        seen.add(key)
                        yield combined

    def describe(self) -> str:
        return f"<{self.parent_node.tag}> // <{self.child_root.tag}>"


class PathCheck(Operator):
    """ε-STD path-accessibility test on joined pairs (view semantics).

    A joined (ancestor, descendant) pair survives only if every node on
    the path between them is accessible — the Gabillon–Bruno condition,
    answered in O(1) per pair by the precomputed deepest-blocked-ancestor
    index. Inserted above every :class:`STDJoin` by the view rewrite.
    """

    name = "PathCheck"

    def __init__(self, child: "STDJoin"):
        super().__init__(child)
        self.parent_key = child.parent_key
        self.child_key = child.child_key

    def _rows(self, ctx: ExecutionContext) -> Iterator[Binding]:
        path_ok = ctx.path_index.path_accessible
        parent_key, child_key = self.parent_key, self.child_key
        for m in self.child.execute(ctx):
            if path_ok(m[parent_key], m[child_key]):
                yield m
            else:
                self.stats.bump("pruned")

    def describe(self) -> str:
        return "ε-STD path accessibility"


class Project(Operator):
    """Distinct returning-node positions, in discovery (streaming) order.

    Counts incoming bindings in ``extra['bindings_in']`` so the facade can
    report ``QueryResult.n_bindings`` without a blocking materialization.
    """

    name = "Project"

    def __init__(self, child: Operator, returning_node: PatternNode):
        super().__init__(child)
        self.returning_node = returning_node
        self.returning_key = id(returning_node)

    def _rows(self, ctx: ExecutionContext) -> Iterator[int]:
        seen = set()
        key = self.returning_key
        for binding in self.child.execute(ctx):
            self.stats.bump("bindings_in")
            pos = binding[key]
            if pos not in seen:
                seen.add(pos)
                yield pos

    def describe(self) -> str:
        return f"returning <{self.returning_node.tag}>"


class Limit(Operator):
    """Stop the pipeline after ``k`` rows (early termination)."""

    name = "Limit"

    def __init__(self, child: Operator, k: int):
        super().__init__(child)
        self.k = k

    def _rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        if self.k <= 0:
            return
        emitted = 0
        for row in self.child.execute(ctx):
            yield row
            emitted += 1
            if emitted >= self.k:
                return

    def describe(self) -> str:
        return f"k={self.k}"
