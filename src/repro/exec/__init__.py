"""Physical query execution: Volcano operators, planner, and context.

Compiles a parsed twig query + NoK decomposition into an explicit tree of
composable iterator operators so results stream out incrementally —
instead of materializing every intermediate list. See
:mod:`repro.exec.planner` for the compilation pipeline and the
secure-semantics plan rewrites, :mod:`repro.exec.operators` for the
operators themselves, and :mod:`repro.exec.context` for the shared
execution state and statistics.
"""

from repro.exec.context import EvalStats, ExecutionContext, OperatorStats, QueryResult
from repro.exec.operators import (
    AccessFilter,
    Limit,
    NPMMatch,
    Operator,
    PageSkipScan,
    PathCheck,
    Project,
    RootVerify,
    STDJoin,
    StaticEmpty,
    TagIndexScan,
)
from repro.exec.planner import (
    PhysicalPlan,
    Planner,
    apply_cho_rewrite,
    apply_view_rewrite,
)
from repro.exec.resultcache import ResultCache

__all__ = [
    "AccessFilter",
    "EvalStats",
    "ExecutionContext",
    "Limit",
    "NPMMatch",
    "Operator",
    "OperatorStats",
    "PageSkipScan",
    "PathCheck",
    "PhysicalPlan",
    "Planner",
    "Project",
    "QueryResult",
    "ResultCache",
    "RootVerify",
    "STDJoin",
    "StaticEmpty",
    "TagIndexScan",
    "apply_cho_rewrite",
    "apply_view_rewrite",
]
