"""CAM — Compressed Accessibility Map baseline (Yu et al., VLDB 2002).

The comparison baseline of the paper's Section 5. :class:`CAM` is the
positive-cover variant whose size asymmetry matches the published curves;
:class:`OverrideCAM` is an idealized nearest-override variant built
provably minimal via dynamic programming, used in the ablation benchmark.
"""

from repro.cam.cam import CAM, CAMEntry, OverrideCAM, total_cam_labels

__all__ = ["CAM", "CAMEntry", "OverrideCAM", "total_cam_labels"]
