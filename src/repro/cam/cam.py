"""Compressed Accessibility Map construction and lookup.

Two CAM variants are provided:

:class:`CAM` — the baseline compared against in the paper's Figure 4,
    modeled after Yu et al. [17]. It is a *positive cover*: each entry
    carries (self, descendants) grant bits and a node is accessible iff
    some entry grants it — its own entry's self bit, or any proper
    ancestor's descendant bit. There is no override below a grant, so a
    descendant bit may only be set when the *entire* subtree is
    accessible, and the default (no covering entry) is inaccessible.
    This asymmetry matches the paper's observations: few labels when
    little is accessible, many labels when holes fragment a mostly
    accessible document (CAM size peaks right of 50% accessibility).

:class:`OverrideCAM` — an idealized variant where the nearest
    ancestor-or-self entry *overrides* (most-specific wins), built
    provably minimal via bottom-up dynamic programming:

    ``cost(v, d) = min([acc(v) == d] * sum_c cost(c, d),
                       1 + min_e sum_c cost(c, e))``

    It is symmetric under complement and never larger than the positive
    cover; the ablation benchmark quantifies the gap.

Both decode back to the exact accessibility vector, making them fair
baselines for the size comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.acl.model import READ, AccessMatrix
from repro.errors import AccessControlError
from repro.xmltree.document import NO_NODE, Document

_INF = float("inf")


@dataclass(frozen=True)
class CAMEntry:
    """One CAM label: grant bits for the node itself and its descendants."""

    position: int
    self_accessible: bool
    descendant_default: bool


def _check_vector(doc: Document, vector: Sequence[bool]) -> List[bool]:
    if len(vector) != len(doc):
        raise AccessControlError("vector length must match document size")
    return [bool(v) for v in vector]


class CAM:
    """Positive-cover Compressed Accessibility Map (the paper's baseline).

    Semantics: node ``v`` is accessible iff an entry at ``v`` has the self
    bit set, or an entry at a proper ancestor of ``v`` has the descendant
    bit set. No covering entry means inaccessible.
    """

    def __init__(self, doc: Document, entries: Dict[int, CAMEntry]):
        self.doc = doc
        self.entries = entries

    @classmethod
    def from_vector(cls, doc: Document, vector: Sequence[bool]) -> "CAM":
        """Build the minimal positive-cover CAM for one subject.

        A descendant grant at ``v`` requires *every proper descendant* of
        ``v`` accessible (no override exists below a grant). The minimal
        entry set is therefore: at each highest uncovered node whose
        descendants are all accessible, one entry granting them (self bit
        reflecting the node's own accessibility); plus a self-only entry
        at every other uncovered accessible node. Each entry is forced by
        the semantics, hence minimality.
        """
        acc = _check_vector(doc, vector)
        n = len(doc)

        # desc_full[v]: every proper descendant of v is accessible.
        desc_full = [True] * n
        for pos in range(n - 1, 0, -1):
            if not (acc[pos] and desc_full[pos]):
                desc_full[doc.parent[pos]] = False

        entries: Dict[int, CAMEntry] = {}
        covered = [False] * n  # granted by an ancestor's descendant bit
        for pos in range(n):
            par = doc.parent[pos]
            if par != NO_NODE:
                par_entry = entries.get(par)
                covered[pos] = covered[par] or (
                    par_entry is not None and par_entry.descendant_default
                )
            if covered[pos]:
                continue
            has_children = doc.subtree[pos] > 1
            if desc_full[pos] and has_children:
                entries[pos] = CAMEntry(pos, acc[pos], True)
            elif acc[pos]:
                entries[pos] = CAMEntry(pos, True, False)
        return cls(doc, entries)

    @classmethod
    def from_matrix(
        cls, doc: Document, matrix: AccessMatrix, subject: int, mode: str = READ
    ) -> "CAM":
        """Build the CAM for one subject of a matrix."""
        return cls.from_vector(doc, matrix.subject_vector(subject, mode))

    # -- lookup ---------------------------------------------------------------

    def accessible(self, pos: int) -> bool:
        """Existential positive lookup: self bit here, or desc bit above."""
        if not 0 <= pos < len(self.doc):
            raise AccessControlError(f"position {pos} out of range")
        entry = self.entries.get(pos)
        if entry is not None and entry.self_accessible:
            return True
        for anc in self.doc.ancestors(pos):
            entry = self.entries.get(anc)
            if entry is not None:
                if entry.descendant_default:
                    return True
        return False

    def to_vector(self) -> List[bool]:
        """Expand to a per-node accessibility vector (for verification)."""
        n = len(self.doc)
        vector = [False] * n
        granted_below = [False] * n
        for pos in range(n):
            par = self.doc.parent[pos]
            above = granted_below[par] if par != NO_NODE else False
            entry = self.entries.get(pos)
            vector[pos] = above or (entry is not None and entry.self_accessible)
            granted_below[pos] = above or (
                entry is not None and entry.descendant_default
            )
        return vector

    def runs(self, lo: int = 0, hi: Optional[int] = None):
        """Maximal ``(start, end, accessible)`` runs over ``[lo, hi)``.

        One walk of the entry tree instead of per-node ancestor walks:
        accessibility only changes at entry positions and at subtree ends
        of descendant grants, so the walk hops between those events and
        emits each uniform stretch as one run. A stack of active grant
        subtree-ends (seeded from the ancestors of ``lo``, outermost
        first, so ends are non-increasing and pop innermost-first) tracks
        descendant coverage in O(1) amortized per event.
        """
        doc = self.doc
        n = len(doc)
        hi = n if hi is None else hi
        if not 0 <= lo <= hi <= n:
            raise AccessControlError(f"invalid run range [{lo}, {hi})")
        if lo >= hi:
            return
        entries = self.entries
        entry_positions = sorted(p for p in entries if lo <= p < hi)

        ends: List[int] = []
        if lo > 0:
            for anc in reversed(list(doc.ancestors(lo))):
                entry = entries.get(anc)
                if entry is not None and entry.descendant_default:
                    end = anc + doc.subtree[anc]
                    if end > lo:
                        ends.append(end)

        run_start = lo
        run_flag: "bool | None" = None
        cur = lo
        i = 0
        n_entries = len(entry_positions)
        while cur < hi:
            while ends and ends[-1] <= cur:
                ends.pop()
            covered = bool(ends)
            # Next accessibility event: an entry, a grant expiring, or hi.
            nxt = hi
            if i < n_entries and entry_positions[i] < nxt:
                nxt = entry_positions[i]
            if ends and ends[-1] < nxt:
                nxt = ends[-1]
            if nxt > cur:
                # Uniform stretch [cur, nxt): covered-or-nothing.
                if run_flag is None:
                    run_flag = covered
                elif covered != run_flag:
                    yield (run_start, cur, run_flag)
                    run_start, run_flag = cur, covered
                cur = nxt
                continue
            # An entry sits at cur: its node takes self-or-covered, its
            # descendant grant (if any, and not already covered) opens.
            entry = entries[cur]
            i += 1
            flag = covered or entry.self_accessible
            if run_flag is None:
                run_flag = flag
            elif flag != run_flag:
                yield (run_start, cur, run_flag)
                run_start, run_flag = cur, flag
            if entry.descendant_default and not covered:
                end = cur + doc.subtree[cur]
                if end > cur + 1:
                    ends.append(end)
            cur += 1
        yield (run_start, hi, run_flag)

    @property
    def n_labels(self) -> int:
        """Number of CAM entries (the paper's size metric for CAM)."""
        return len(self.entries)

    def size_bytes(self, pointer_bytes: int = 4, accessibility_bits: int = 2) -> int:
        """Storage model from Section 5.1.1.

        CAM stores access rights *separately* from the data, so each label
        needs a reference to its document node plus tree pointers in
        addition to the accessibility bits. The paper's "unrealistically"
        favourable accounting uses 2 bits + 1 byte of pointer; the default
        here is a (still generous) 4-byte pointer.
        """
        per_label_bits = 8 * pointer_bytes + accessibility_bits
        return (self.n_labels * per_label_bits + 7) // 8


class OverrideCAM:
    """Nearest-ancestor-override CAM, provably minimal via DP (ablation).

    Lookup: the nearest ancestor-or-self entry decides — self bit when the
    entry is at the node itself, descendant bit otherwise. The root must
    carry an entry.
    """

    def __init__(self, doc: Document, entries: Dict[int, CAMEntry]):
        if 0 not in entries:
            raise AccessControlError("an OverrideCAM must label the document root")
        self.doc = doc
        self.entries = entries

    @classmethod
    def from_vector(cls, doc: Document, vector: Sequence[bool]) -> "OverrideCAM":
        """Build the minimal override CAM via bottom-up DP."""
        acc = _check_vector(doc, vector)
        n = len(doc)

        cost = [[0.0, 0.0] for _ in range(n)]
        entry_cost = [0.0] * n
        entry_default = [False] * n
        child_sums = [[0.0, 0.0] for _ in range(n)]

        for pos in range(n - 1, -1, -1):
            sums = child_sums[pos]
            if sums[0] <= sums[1]:
                entry_cost[pos] = 1 + sums[0]
                entry_default[pos] = False
            else:
                entry_cost[pos] = 1 + sums[1]
                entry_default[pos] = True
            for d in (0, 1):
                no_entry = sums[d] if acc[pos] == bool(d) else _INF
                cost[pos][d] = min(no_entry, entry_cost[pos])
            par = doc.parent[pos]
            if par != NO_NODE:
                child_sums[par][0] += cost[pos][0]
                child_sums[par][1] += cost[pos][1]

        # Top-down reconstruction. The root has no ancestor entry to inherit
        # from, so it always takes the entry option; elsewhere we prefer the
        # no-entry option on ties (strictly fewer labels never loses).
        entries: Dict[int, CAMEntry] = {}
        inherited = [False] * n  # descendant default in effect at each node
        for pos in range(n):
            d = inherited[pos]
            no_entry_cost = child_sums[pos][int(d)] if acc[pos] == d else _INF
            has_entry = pos == 0 or entry_cost[pos] < no_entry_cost
            if has_entry:
                child_default = entry_default[pos]
                entries[pos] = CAMEntry(pos, acc[pos], child_default)
            else:
                child_default = d
            for child in doc.children(pos):
                inherited[child] = child_default
        return cls(doc, entries)

    @classmethod
    def from_matrix(
        cls, doc: Document, matrix: AccessMatrix, subject: int, mode: str = READ
    ) -> "OverrideCAM":
        return cls.from_vector(doc, matrix.subject_vector(subject, mode))

    def accessible(self, pos: int) -> bool:
        """Resolve accessibility via the nearest ancestor-or-self entry."""
        if not 0 <= pos < len(self.doc):
            raise AccessControlError(f"position {pos} out of range")
        entry = self.entries.get(pos)
        if entry is not None:
            return entry.self_accessible
        for anc in self.doc.ancestors(pos):
            entry = self.entries.get(anc)
            if entry is not None:
                return entry.descendant_default
        raise AccessControlError("unlabeled root: corrupt CAM")  # pragma: no cover

    def to_vector(self) -> List[bool]:
        n = len(self.doc)
        vector = [False] * n
        default = [False] * n
        for pos in range(n):
            par = self.doc.parent[pos]
            inherited = default[par] if par != NO_NODE else False
            entry = self.entries.get(pos)
            if entry is not None:
                vector[pos] = entry.self_accessible
                default[pos] = entry.descendant_default
            else:
                vector[pos] = inherited
                default[pos] = inherited
        return vector

    @property
    def n_labels(self) -> int:
        return len(self.entries)

    def size_bytes(self, pointer_bytes: int = 4, accessibility_bits: int = 2) -> int:
        per_label_bits = 8 * pointer_bytes + accessibility_bits
        return (self.n_labels * per_label_bits + 7) // 8


def total_cam_labels(
    doc: Document,
    matrix: AccessMatrix,
    subjects: Optional[Sequence[int]] = None,
    mode: str = READ,
) -> int:
    """Total labels across per-subject CAMs (CAM's multi-user cost).

    CAM is a single-subject structure, so a multi-user deployment needs one
    CAM per subject; the paper compares this total against one multi-user
    DOL.
    """
    subjects = subjects if subjects is not None else range(matrix.n_subjects)
    return sum(
        CAM.from_matrix(doc, matrix, subject, mode).n_labels for subject in subjects
    )
