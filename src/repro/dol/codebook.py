"""The DOL codebook: dictionary compression of access control lists.

Each *distinct* access control list (a bitmask over subjects) that appears
in the secured tree is stored once; transition nodes reference it by a
small integer code (Section 2.1). The codebook is designed to stay resident
in memory — the paper estimates ~4 MB for 8,639 subjects and ~4,000 entries.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.errors import CodebookError


class Codebook:
    """Bidirectional mapping between subject bitmasks and integer codes."""

    def __init__(self, n_subjects: int):
        if n_subjects <= 0:
            raise CodebookError("codebook needs at least one subject column")
        self.n_subjects = n_subjects
        self._mask_to_code: Dict[int, int] = {}
        self._code_to_mask: List[int] = []

    def encode(self, mask: int) -> int:
        """Return the code for ``mask``, registering it if new."""
        if mask < 0 or mask >> self.n_subjects:
            raise CodebookError(
                f"mask {mask:#x} has bits outside {self.n_subjects} subjects"
            )
        code = self._mask_to_code.get(mask)
        if code is None:
            code = len(self._code_to_mask)
            self._mask_to_code[mask] = code
            self._code_to_mask.append(mask)
        return code

    def decode(self, code: int) -> int:
        """Return the bitmask stored for ``code``."""
        if not 0 <= code < len(self._code_to_mask):
            raise CodebookError(f"unknown access control code {code}")
        return self._code_to_mask[code]

    def accessible(self, code: int, subject: int) -> bool:
        """The s-th bit of codebook entry ``code`` (Section 3.3 lookup)."""
        if not 0 <= subject < self.n_subjects:
            raise CodebookError(f"subject {subject} out of range")
        return bool(self.decode(code) >> subject & 1)

    def __len__(self) -> int:
        return len(self._code_to_mask)

    def __contains__(self, mask: int) -> bool:
        return mask in self._mask_to_code

    def entries(self) -> Iterator[Tuple[int, int]]:
        """Yield (code, mask) pairs in code order."""
        return enumerate(self._code_to_mask)

    def clone(self) -> "Codebook":
        """An independent copy (snapshot isolation for concurrent readers).

        Codes are not append-only — :meth:`compact`, :meth:`add_subject`
        and :meth:`remove_subject` all remap or rewrite entries — so a
        frozen read view must carry its own copy rather than share.
        """
        copy = Codebook(self.n_subjects)
        copy._mask_to_code = dict(self._mask_to_code)
        copy._code_to_mask = list(self._code_to_mask)
        return copy

    # -- subject-set maintenance (Section 3.4) ------------------------------

    def add_subject(self, initially_like: int = -1) -> int:
        """Add a new subject column; returns the new subject id.

        Per Section 3.4 this touches only the in-memory codebook: the new
        subject either starts with no rights (``initially_like == -1``) or
        copies the column of an existing subject. Embedded transition nodes
        are untouched.
        """
        new_subject = self.n_subjects
        self.n_subjects += 1
        if initially_like >= 0:
            if initially_like >= new_subject:
                raise CodebookError(f"subject {initially_like} out of range")
            rebuilt: List[int] = []
            for mask in self._code_to_mask:
                if mask >> initially_like & 1:
                    mask |= 1 << new_subject
                rebuilt.append(mask)
            self._replace_entries(rebuilt)
        return new_subject

    def remove_subject(self, subject: int) -> None:
        """Clear a subject's column in every entry.

        Distinct entries may now hold identical masks; the paper corrects
        such redundancy lazily, so codes remain valid and the mask→code map
        points at the lowest code for each surviving mask.
        """
        if not 0 <= subject < self.n_subjects:
            raise CodebookError(f"subject {subject} out of range")
        bit = 1 << subject
        self._replace_entries([mask & ~bit for mask in self._code_to_mask])

    def duplicate_entry_count(self) -> int:
        """Number of redundant entries awaiting lazy compaction."""
        return len(self._code_to_mask) - len(set(self._code_to_mask))

    def compact(self) -> Dict[int, int]:
        """Eagerly merge duplicate entries; returns old-code → new-code.

        Callers must rewrite embedded codes with the returned mapping —
        this is the eager counterpart of the paper's lazy correction.
        """
        remap: Dict[int, int] = {}
        new_masks: List[int] = []
        new_index: Dict[int, int] = {}
        for old_code, mask in enumerate(self._code_to_mask):
            if mask in new_index:
                remap[old_code] = new_index[mask]
            else:
                new_code = len(new_masks)
                new_index[mask] = new_code
                new_masks.append(mask)
                remap[old_code] = new_code
        self._code_to_mask = new_masks
        self._mask_to_code = new_index
        return remap

    # -- storage model -------------------------------------------------------

    def entry_bytes(self) -> int:
        """Bytes per codebook entry: one bit per subject, byte-aligned."""
        return (self.n_subjects + 7) // 8

    def code_bytes(self) -> int:
        """Bytes needed for a code reference (what transition nodes store)."""
        n = max(len(self._code_to_mask), 2)
        bits = (n - 1).bit_length()
        return (bits + 7) // 8

    def size_bytes(self) -> int:
        """Total in-memory codebook size under the paper's cost model."""
        return len(self._code_to_mask) * self.entry_bytes()

    def _replace_entries(self, masks: List[int]) -> None:
        self._code_to_mask = masks
        self._mask_to_code = {}
        for code, mask in enumerate(masks):
            self._mask_to_code.setdefault(mask, code)
