"""Single-pass streaming DOL construction and run-length decoding.

The paper motivates document order partly because "a document order
encoding of access rights can be constructed on-the-fly using a single pass
through a labeled XML document" (Section 2). This module implements that:
it consumes the SAX-like event stream of :func:`repro.xmltree.parser.iterparse`
and a labeling callback, and emits a finished :class:`~repro.dol.labeling.DOL`
without ever materializing the per-node mask list.

The inverse single pass lives here too: :func:`decode_transition_runs`
streams a DOL transition list straight back out as maximal accessibility
runs — the native producer behind :meth:`DOL.access_runs`, decoding each
distinct code once and never touching individual nodes.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Dict, Iterable, Iterator, Optional, Sequence, Tuple

from repro.dol.codebook import Codebook
from repro.dol.labeling import DOL
from repro.errors import AccessControlError
from repro.labeling.runs import Run
from repro.xmltree import parser

#: Labeling callback: (position, tag, ancestor-path tags) -> subject bitmask.
LabelFn = Callable[[int, str, Tuple[str, ...]], int]


class StreamingDOLBuilder:
    """Incremental DOL builder fed one node mask at a time, in document order."""

    def __init__(self, n_subjects: int, codebook: Optional[Codebook] = None):
        self.codebook = codebook if codebook is not None else Codebook(n_subjects)
        self._positions: list = []
        self._codes: list = []
        self._previous_mask: Optional[int] = None
        self._next_position = 0

    def feed(self, mask: int) -> None:
        """Append the next node's access control list."""
        if mask != self._previous_mask:
            self._positions.append(self._next_position)
            self._codes.append(self.codebook.encode(mask))
            self._previous_mask = mask
        self._next_position += 1

    def finish(self) -> DOL:
        """Return the completed DOL."""
        if self._next_position == 0:
            raise AccessControlError("no nodes were fed to the builder")
        dol = DOL(self._next_position, self.codebook)
        dol.positions = self._positions
        dol.codes = self._codes
        return dol

    @property
    def nodes_seen(self) -> int:
        return self._next_position


def build_dol_streaming(
    xml_text: str,
    n_subjects: int,
    label_fn: LabelFn,
    codebook: Optional[Codebook] = None,
) -> DOL:
    """Build a DOL in one pass over raw XML text.

    ``label_fn`` is called once per element, in document order, with the
    element's position, tag, and the tag path of its open ancestors — enough
    context to evaluate propagation-style labeling rules on the fly.
    """
    builder = StreamingDOLBuilder(n_subjects, codebook)
    path: list = []
    for kind, payload in parser.iterparse(xml_text):
        if kind == parser.START:
            tag = payload[0]  # type: ignore[index]
            mask = label_fn(builder.nodes_seen, tag, tuple(path))
            builder.feed(mask)
            path.append(tag)
        elif kind == parser.END:
            path.pop()
    return builder.finish()


def decode_transition_runs(
    positions: Sequence[int],
    codes: Sequence[int],
    codebook: Codebook,
    subjects: Sequence[int],
    lo: int,
    hi: int,
) -> Iterator[Run]:
    """Decode a transition list into maximal accessibility runs.

    One pass over the transitions overlapping ``[lo, hi)``: each distinct
    code's union-accessibility for ``subjects`` is decoded once and
    memoized, adjacent equal-flag segments merge as they stream out, and
    no per-node work happens at all — cost is O(transitions in range),
    not O(nodes in range).
    """
    if lo >= hi:
        return
    i = bisect_right(positions, lo) - 1
    decoded: Dict[int, bool] = {}
    run_start = lo
    run_flag: "bool | None" = None
    n = len(positions)
    while i < n and positions[i] < hi:
        code = codes[i]
        flag = decoded.get(code)
        if flag is None:
            mask = codebook.decode(code)
            flag = any(mask >> subject & 1 for subject in subjects)
            decoded[code] = flag
        if run_flag is None:
            run_flag = flag
        elif flag != run_flag:
            seg_start = positions[i]
            yield (run_start, seg_start, run_flag)
            run_start, run_flag = seg_start, flag
        i += 1
    if run_flag is None:
        raise AccessControlError(f"no transition covers position {lo}")
    yield (run_start, hi, run_flag)


def masks_in_document_order(events: Iterable, label_fn: LabelFn) -> Iterable[int]:
    """Generator adapter: turn an event stream into a mask stream."""
    path: list = []
    position = 0
    for kind, payload in events:
        if kind == parser.START:
            tag = payload[0]
            yield label_fn(position, tag, tuple(path))
            position += 1
            path.append(tag)
        elif kind == parser.END:
            path.pop()
