"""Single-pass streaming DOL construction.

The paper motivates document order partly because "a document order
encoding of access rights can be constructed on-the-fly using a single pass
through a labeled XML document" (Section 2). This module implements that:
it consumes the SAX-like event stream of :func:`repro.xmltree.parser.iterparse`
and a labeling callback, and emits a finished :class:`~repro.dol.labeling.DOL`
without ever materializing the per-node mask list.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Tuple

from repro.dol.codebook import Codebook
from repro.dol.labeling import DOL
from repro.errors import AccessControlError
from repro.xmltree import parser

#: Labeling callback: (position, tag, ancestor-path tags) -> subject bitmask.
LabelFn = Callable[[int, str, Tuple[str, ...]], int]


class StreamingDOLBuilder:
    """Incremental DOL builder fed one node mask at a time, in document order."""

    def __init__(self, n_subjects: int, codebook: Optional[Codebook] = None):
        self.codebook = codebook if codebook is not None else Codebook(n_subjects)
        self._positions: list = []
        self._codes: list = []
        self._previous_mask: Optional[int] = None
        self._next_position = 0

    def feed(self, mask: int) -> None:
        """Append the next node's access control list."""
        if mask != self._previous_mask:
            self._positions.append(self._next_position)
            self._codes.append(self.codebook.encode(mask))
            self._previous_mask = mask
        self._next_position += 1

    def finish(self) -> DOL:
        """Return the completed DOL."""
        if self._next_position == 0:
            raise AccessControlError("no nodes were fed to the builder")
        dol = DOL(self._next_position, self.codebook)
        dol.positions = self._positions
        dol.codes = self._codes
        return dol

    @property
    def nodes_seen(self) -> int:
        return self._next_position


def build_dol_streaming(
    xml_text: str,
    n_subjects: int,
    label_fn: LabelFn,
    codebook: Optional[Codebook] = None,
) -> DOL:
    """Build a DOL in one pass over raw XML text.

    ``label_fn`` is called once per element, in document order, with the
    element's position, tag, and the tag path of its open ancestors — enough
    context to evaluate propagation-style labeling rules on the fly.
    """
    builder = StreamingDOLBuilder(n_subjects, codebook)
    path: list = []
    for kind, payload in parser.iterparse(xml_text):
        if kind == parser.START:
            tag = payload[0]  # type: ignore[index]
            mask = label_fn(builder.nodes_seen, tag, tuple(path))
            builder.feed(mask)
            path.append(tag)
        elif kind == parser.END:
            path.pop()
    return builder.finish()


def masks_in_document_order(events: Iterable, label_fn: LabelFn) -> Iterable[int]:
    """Generator adapter: turn an event stream into a mask stream."""
    path: list = []
    position = 0
    for kind, payload in events:
        if kind == parser.START:
            tag = payload[0]
            yield label_fn(position, tag, tuple(path))
            position += 1
            path.append(tag)
        elif kind == parser.END:
            path.pop()
