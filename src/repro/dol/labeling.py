"""DOL construction and lookup (Sections 2 and 2.1).

A :class:`DOL` is a document-ordered list of transition positions with
access control codes, plus the shared :class:`~repro.dol.codebook.Codebook`.
Construction is a single linear scan over per-node bitmasks in document
order; lookup is a binary search for the nearest preceding transition.

:class:`DOL` is the ``"dol"`` backend of the pluggable
:class:`~repro.labeling.base.AccessLabeling` interface — the only backend
with ``has_page_hints``: its transition codes embed into
:class:`~repro.storage.nokstore.NoKStore` pages (the on-disk format is
unchanged by the interface), enabling the Section 3.3 page-skip test and
zero-I/O accessibility checks. Update hooks delegate to
:class:`~repro.dol.updates.DOLUpdater`, the local splice that Proposition
1 bounds at two extra transitions per operation.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.acl.model import READ, AccessMatrix
from repro.dol.codebook import Codebook
from repro.errors import AccessControlError
from repro.labeling.base import AccessLabeling, MaskFn

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xmltree.document import Document


def transitions_from_masks(masks: Sequence[int]) -> List[Tuple[int, int]]:
    """Compute (position, mask) transition pairs from document-order masks.

    A node is a transition node iff its access control list differs from
    its document-order predecessor; the root (position 0) always is.
    """
    if not masks:
        raise AccessControlError("cannot label an empty document")
    transitions = [(0, masks[0])]
    previous = masks[0]
    for pos in range(1, len(masks)):
        if masks[pos] != previous:
            transitions.append((pos, masks[pos]))
            previous = masks[pos]
    return transitions


def transition_count(vector: Sequence[bool]) -> int:
    """Number of transition nodes for a single subject's +/- labeling."""
    return len(transitions_from_masks([int(v) for v in vector]))


class DOL(AccessLabeling):
    """Document Ordered Labeling of one document (one action mode).

    Attributes
    ----------
    n_nodes:
        Number of document positions covered.
    codebook:
        Shared code → access-control-list dictionary.
    positions / codes:
        Parallel lists: ``positions`` is strictly increasing with
        ``positions[0] == 0``; ``codes[i]`` is the access control code in
        effect from ``positions[i]`` up to the next transition.
    """

    backend_name = "dol"
    has_page_hints = True

    def __init__(self, n_nodes: int, codebook: Codebook):
        if n_nodes <= 0:
            raise AccessControlError("DOL needs at least one node")
        self.n_nodes = n_nodes
        self.codebook = codebook
        self.positions: List[int] = []
        self.codes: List[int] = []

    # -- construction --------------------------------------------------------

    @classmethod
    def from_masks(
        cls, masks: Sequence[int], n_subjects: int, codebook: Optional[Codebook] = None
    ) -> "DOL":
        """Build a DOL from per-node bitmasks in document order."""
        codebook = codebook if codebook is not None else Codebook(n_subjects)
        dol = cls(len(masks), codebook)
        for pos, mask in transitions_from_masks(masks):
            dol.positions.append(pos)
            dol.codes.append(codebook.encode(mask))
        return dol

    @classmethod
    def from_matrix(
        cls,
        matrix: AccessMatrix,
        mode: str = READ,
        codebook: Optional[Codebook] = None,
    ) -> "DOL":
        """Build a DOL for one action mode of an accessibility matrix."""
        return cls.from_masks(matrix.masks(mode), matrix.n_subjects, codebook)

    @classmethod
    def from_vector(cls, vector: Sequence[bool]) -> "DOL":
        """Build a single-subject DOL from a +/- accessibility vector."""
        return cls.from_masks([int(v) for v in vector], n_subjects=1)

    @classmethod
    def build(
        cls, doc: "Document", matrix: AccessMatrix, mode: str = READ
    ) -> "DOL":
        """The :class:`~repro.labeling.base.AccessLabeling` constructor.

        A DOL is purely positional — the document argument only sets the
        expectation that ``matrix`` covers it (checked by the registry).
        """
        return cls.from_matrix(matrix, mode)

    # -- lookup (Section 3.3) --------------------------------------------------

    def transition_index_for(self, pos: int) -> int:
        """Index of the transition governing position ``pos``."""
        if not 0 <= pos < self.n_nodes:
            raise AccessControlError(f"position {pos} out of range")
        return bisect_right(self.positions, pos) - 1

    def code_at(self, pos: int) -> int:
        """Access control code in effect at position ``pos``."""
        return self.codes[self.transition_index_for(pos)]

    def mask_at(self, pos: int) -> int:
        """Access control list (bitmask) in effect at position ``pos``."""
        return self.codebook.decode(self.code_at(pos))

    def accessible(self, subject: int, pos: int) -> bool:
        """The secure-evaluation ACCESS check: bit ``subject`` at ``pos``."""
        return self.codebook.accessible(self.code_at(pos), subject)

    def accessible_any(self, subjects: Sequence[int], pos: int) -> bool:
        """True if *any* of the subjects may access ``pos``.

        This implements the user-level check of Section 4's footnote: a
        user's actual rights are the union of her own subject's rights and
        those of the groups she belongs to.
        """
        mask = self.mask_at(pos)
        return any(mask >> subject & 1 for subject in subjects)

    def is_transition(self, pos: int) -> bool:
        """True iff ``pos`` is a transition node."""
        index = self.transition_index_for(pos)
        return self.positions[index] == pos

    # -- bulk accessibility (run-length intervals) -----------------------------
    #
    # The DOL *is* a run-length encoding: a run boundary can only sit at
    # a transition node, so decoding the transition codes straight into
    # run lists costs O(transitions in range) — the native form of the
    # AccessLabeling bulk API (the generic fallback probes every node).

    def access_runs(self, subject, lo=0, hi=None):
        """Maximal runs for one subject, decoded from the transition list."""
        from repro.dol.stream import decode_transition_runs

        lo, hi = self._check_range(lo, hi)
        return decode_transition_runs(
            self.positions, self.codes, self.codebook, (subject,), lo, hi
        )

    def access_runs_any(self, subjects, lo=0, hi=None):
        """Maximal runs of the subjects' union rights (one decode pass)."""
        from repro.dol.stream import decode_transition_runs

        lo, hi = self._check_range(lo, hi)
        subjects = tuple(subjects)
        if not subjects:
            raise AccessControlError("access_runs_any needs >= 1 subject")
        return decode_transition_runs(
            self.positions, self.codes, self.codebook, subjects, lo, hi
        )

    # -- access classes --------------------------------------------------------

    def _signature_atoms(self) -> "Tuple[int, ...]":
        """Distinct ACLs straight off the codebook columns the DOL references.

        O(transitions) instead of the generic O(nodes) mask expansion:
        the distinct codes in the transition list *are* the distinct
        ACLs, decoded through the shared codebook. (Codebook entries no
        transition references — e.g. after an update rewrote a range —
        are correctly excluded: no node carries them.)
        """
        cached = getattr(self, "_sig_atoms", None)
        epoch = self.runs_epoch
        if cached is not None and cached[0] == epoch:
            return cached[1]
        atoms = tuple(
            self.codebook.decode(code) for code in dict.fromkeys(self.codes)
        )
        self._sig_atoms = (epoch, atoms)
        return atoms

    # -- reconstruction & metrics ----------------------------------------------

    def to_masks(self) -> List[int]:
        """Expand back to per-node bitmasks (inverse of from_masks)."""
        masks: List[int] = []
        for i, start in enumerate(self.positions):
            end = self.positions[i + 1] if i + 1 < len(self.positions) else self.n_nodes
            masks.extend([self.codebook.decode(self.codes[i])] * (end - start))
        return masks

    def to_matrix(self, n_subjects: Optional[int] = None) -> AccessMatrix:
        """Expand back to an accessibility matrix."""
        n_subjects = n_subjects if n_subjects is not None else self.codebook.n_subjects
        return AccessMatrix.from_masks(self.to_masks(), n_subjects)

    @property
    def n_transitions(self) -> int:
        """Number of transition nodes (the paper's primary size metric)."""
        return len(self.positions)

    @property
    def n_labels(self) -> int:
        """Backend size metric: for a DOL, the transition count."""
        return len(self.positions)

    def transition_density(self) -> float:
        """Transitions per node — ``< 0.01`` in the paper's real datasets."""
        return len(self.positions) / self.n_nodes

    def size_bytes(self) -> int:
        """Total storage: in-memory codebook + embedded code per transition.

        Matches the paper's Section 5.1.1 accounting: each transition node
        stores only an access control code (no node pointer — the code is
        embedded in the structural encoding), and each codebook entry is
        one bit per subject.
        """
        return self.codebook.size_bytes() + self.n_transitions * self.codebook.code_bytes()

    def validate(self) -> None:
        """Check structural invariants; raises on corruption."""
        if not self.positions or self.positions[0] != 0:
            raise AccessControlError("DOL must start with a transition at 0")
        if len(self.positions) != len(self.codes):
            raise AccessControlError("positions/codes length mismatch")
        for i in range(1, len(self.positions)):
            if self.positions[i] <= self.positions[i - 1]:
                raise AccessControlError("transition positions must increase")
            if self.codes[i] == self.codes[i - 1]:
                raise AccessControlError(
                    f"redundant transition at {self.positions[i]}"
                )
        if self.positions[-1] >= self.n_nodes:
            raise AccessControlError("transition beyond document end")
        for code in self.codes:
            self.codebook.decode(code)

    # -- catalog serialization (AccessLabeling) --------------------------------
    #
    # A store-backed DOL round-trips through the page file itself (the
    # embedded transition codes ARE the serialization — the format the
    # paper designed, unchanged by the backend interface); the catalog
    # payload below is the page-free fallback used when a DOL must travel
    # without its pages.

    def to_catalog(self) -> Dict[str, object]:
        return {
            "n_nodes": self.n_nodes,
            "n_subjects": self.codebook.n_subjects,
            "codebook": [f"{mask:x}" for _code, mask in self.codebook.entries()],
            "positions": list(self.positions),
            "codes": list(self.codes),
        }

    @classmethod
    def from_catalog(cls, payload: Dict[str, object], doc: "Document") -> "DOL":
        codebook = Codebook(payload["n_subjects"])
        for mask_hex in payload["codebook"]:
            codebook.encode(int(mask_hex, 16))
        dol = cls(payload["n_nodes"], codebook)
        dol.positions = list(payload["positions"])
        dol.codes = list(payload["codes"])
        dol.validate()
        return dol

    # -- update hooks (AccessLabeling; Section 3.4) ----------------------------
    #
    # Delegated to DOLUpdater — the local transition splice. Unlike the
    # generic rebuild-from-masks defaults, these touch only the segment
    # list covering the range; Proposition 1 bounds each operation at two
    # extra transitions.

    def transform_range(self, start: int, end: int, fn: MaskFn) -> int:
        return self._updater().transform_range(start, end, fn)

    def insert_range(self, at: int, masks: Sequence[int]) -> int:
        return self._updater().insert_range(at, masks)

    def delete_range(self, start: int, end: int) -> int:
        return self._updater().delete_range(start, end)

    def move_range(self, start: int, end: int, to: int) -> int:
        return self._updater().move_range(start, end, to)

    def _updater(self):
        from repro.dol.updates import DOLUpdater

        return DOLUpdater(self)

    def _install_masks(self, masks: List[int]) -> None:
        """Full rebuild fallback (the update hooks above splice locally)."""
        if not masks:
            raise AccessControlError("cannot label an empty document")
        self.n_nodes = len(masks)
        self.positions = []
        self.codes = []
        for pos, mask in transitions_from_masks(masks):
            self.positions.append(pos)
            self.codes.append(self.codebook.encode(mask))
        self._bump_runs_epoch()

    def clone(self) -> "DOL":
        """Independent copy: own transition lists, own codebook.

        The codebook must be copied too — updates encode new masks into
        it, and maintenance (compact, add/remove subject) remaps codes,
        so a shared codebook would leak writer state into a snapshot.
        """
        dol = DOL(self.n_nodes, self.codebook.clone())
        dol.positions = list(self.positions)
        dol.codes = list(self.codes)
        return dol

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DOL):
            return NotImplemented
        return (
            self.n_nodes == other.n_nodes
            and self.to_masks() == other.to_masks()
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DOL(n_nodes={self.n_nodes}, transitions={self.n_transitions}, "
            f"codebook={len(self.codebook)})"
        )
