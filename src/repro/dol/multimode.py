"""Multi-mode DOL: one labeling across all (subject, mode) pairs.

Section 2 notes that "the approach in this paper can be easily applied for
multiple action modes in a similar way [as] for multiple users", and
footnote 2 conjectures correlations among action modes too. This module
implements that generalization: the access control list of a node becomes
a bitmask over *columns*, one column per (mode, subject) pair, and a
single transition list + codebook covers every mode.

Real systems exhibit strong cross-mode correlation (LiveLink's permission
levels are nested: whoever may ``delete`` may also ``see``), so a combined
DOL is usually much smaller than per-mode DOLs — quantified by the
``test_multimode`` ablation benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.acl.model import AccessMatrix
from repro.dol.codebook import Codebook
from repro.dol.labeling import DOL
from repro.errors import AccessControlError


class MultiModeDOL:
    """A DOL over the combined (mode x subject) column space.

    Column layout: column ``mode_index * n_subjects + subject``. The
    underlying :class:`~repro.dol.labeling.DOL` machinery (transitions,
    codebook, lookup, updates) is reused unchanged — this class only
    manages the column mapping.
    """

    def __init__(self, dol: DOL, modes: List[str], n_subjects: int):
        if dol.codebook.n_subjects != len(modes) * n_subjects:
            raise AccessControlError(
                "codebook width must equal n_modes * n_subjects"
            )
        self.dol = dol
        self.modes = list(modes)
        self.n_subjects = n_subjects
        self._mode_index: Dict[str, int] = {m: i for i, m in enumerate(modes)}

    @classmethod
    def from_matrix(
        cls, matrix: AccessMatrix, codebook: Optional[Codebook] = None
    ) -> "MultiModeDOL":
        """Combine every mode of an accessibility matrix into one DOL."""
        n_columns = len(matrix.modes) * matrix.n_subjects
        per_mode_masks = [matrix.masks(mode) for mode in matrix.modes]
        combined: List[int] = []
        for pos in range(matrix.n_nodes):
            mask = 0
            for mode_index, masks in enumerate(per_mode_masks):
                mask |= masks[pos] << (mode_index * matrix.n_subjects)
            combined.append(mask)
        dol = DOL.from_masks(combined, n_columns, codebook)
        return cls(dol, list(matrix.modes), matrix.n_subjects)

    def column(self, subject: int, mode: str) -> int:
        """The combined-column index of a (subject, mode) pair."""
        if not 0 <= subject < self.n_subjects:
            raise AccessControlError(f"subject {subject} out of range")
        try:
            mode_index = self._mode_index[mode]
        except KeyError:
            raise AccessControlError(f"unknown action mode {mode!r}") from None
        return mode_index * self.n_subjects + subject

    def accessible(self, subject: int, pos: int, mode: str) -> bool:
        """The full accessible(s, m, d) predicate of Section 2."""
        return self.dol.accessible(self.column(subject, mode), pos)

    def to_matrix(self) -> AccessMatrix:
        """Expand back to a multi-mode accessibility matrix."""
        matrix = AccessMatrix(self.dol.n_nodes, self.n_subjects, self.modes)
        subject_mask = (1 << self.n_subjects) - 1
        for pos, combined in enumerate(self.dol.to_masks()):
            for mode_index, mode in enumerate(self.modes):
                mask = combined >> (mode_index * self.n_subjects) & subject_mask
                matrix.set_mask(pos, mask, mode)
        return matrix

    # -- metrics -----------------------------------------------------------

    @property
    def n_transitions(self) -> int:
        return self.dol.n_transitions

    def size_bytes(self) -> int:
        """Combined storage under the paper's cost model."""
        return self.dol.size_bytes()

    @staticmethod
    def per_mode_total_bytes(matrix: AccessMatrix) -> int:
        """Baseline: independent DOLs, one per action mode."""
        return sum(
            DOL.from_matrix(matrix, mode).size_bytes() for mode in matrix.modes
        )
