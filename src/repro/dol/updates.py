"""DOL update operations (Section 3.4).

Two families of updates are supported:

- **accessibility updates** — change the accessibility function itself:
  one node, or a whole subtree (contiguous document-order range), for one
  subject or to an explicit access control list;
- **structural updates** — insert, delete, or move a subtree (the inserted
  nodes arrive with their own access controls, per the paper).

All operations have the *update locality* property: only the transitions
between the pair surrounding the affected range are touched. Proposition 1
(each operation adds at most 2 transition nodes beyond those present in the
original data and in any inserted data) is enforced by
:meth:`DOLUpdater.check_proposition1` and verified by property tests.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dol.labeling import DOL, transitions_from_masks
from repro.errors import UpdateError

MaskFn = Callable[[int], int]
JournalFn = Callable[[Dict[str, object]], None]


class DOLUpdater:
    """In-place update engine for a :class:`~repro.dol.labeling.DOL`.

    ``journal``, when given, receives one small dict per logical
    operation (kind, range, transition delta). The block store uses it to
    embed the logical update description in the write-ahead log's commit
    record, so a recovered store can report *what* the batch it replayed
    or rolled back was doing.
    """

    def __init__(self, dol: DOL, journal: Optional[JournalFn] = None):
        self.dol = dol
        self.journal = journal

    def _record(self, op: str, **fields) -> None:
        if self.journal is not None:
            entry: Dict[str, object] = {"op": op}
            entry.update(fields)
            self.journal(entry)

    # -- accessibility updates -------------------------------------------------

    def set_node_mask(self, pos: int, mask: int) -> int:
        """Replace the access control list of a single node.

        Returns the change in transition count (Proposition 1: <= 2).
        """
        return self.transform_range(pos, pos + 1, lambda _old: mask)

    def set_range_mask(self, start: int, end: int, mask: int) -> int:
        """Replace the ACL of every node in [start, end) — a subtree update."""
        return self.transform_range(start, end, lambda _old: mask)

    def set_subject_accessibility(
        self, start: int, end: int, subject: int, value: bool
    ) -> int:
        """Grant/revoke one subject over [start, end), preserving other bits.

        This is the paper's "change the accessibility of all of the nodes
        in a document subtree [for a given subject]" operation.
        """
        bit = 1 << subject
        if value:
            return self.transform_range(start, end, lambda old: old | bit)
        return self.transform_range(start, end, lambda old: old & ~bit)

    def set_node_accessibility(self, pos: int, subject: int, value: bool) -> int:
        """Grant/revoke one subject on one node."""
        return self.set_subject_accessibility(pos, pos + 1, subject, value)

    def transform_range(self, start: int, end: int, fn: MaskFn) -> int:
        """Apply ``fn`` to the ACL of every node in [start, end).

        The rewrite is local: transitions strictly before ``start`` and
        strictly after ``end`` are untouched; the segment list covering the
        range is recomputed, with boundary transitions materialized at
        ``start`` and ``end`` when needed.

        Returns the transition-count delta.
        """
        dol = self.dol
        if not 0 <= start < end <= dol.n_nodes:
            raise UpdateError(f"invalid range [{start}, {end})")
        before = dol.n_transitions

        pairs = self._segment_pairs()
        rebuilt: List[Tuple[int, int]] = []
        mask_after_end = dol.mask_at(end) if end < dol.n_nodes else None

        for pos, mask in pairs:
            if pos < start:
                rebuilt.append((pos, mask))
        # The segment in effect at `start`, clipped and transformed.
        rebuilt.append((start, fn(dol.mask_at(start))))
        for pos, mask in pairs:
            if start < pos < end:
                rebuilt.append((pos, fn(mask)))
        if mask_after_end is not None:
            rebuilt.append((end, mask_after_end))
            for pos, mask in pairs:
                if pos > end:
                    rebuilt.append((pos, mask))

        self._install(rebuilt)
        delta = dol.n_transitions - before
        self._record("transform_range", start=start, end=end, delta=delta)
        return delta

    # -- structural updates ------------------------------------------------------

    def insert_range(self, at: int, masks: Sequence[int]) -> int:
        """Insert ``len(masks)`` new nodes (a labeled subtree) at position ``at``.

        Existing positions >= ``at`` shift right. Returns the transition
        delta *beyond* the inserted data's own transitions, i.e. the
        Proposition 1 quantity (<= 2).
        """
        dol = self.dol
        if not 0 <= at <= dol.n_nodes:
            raise UpdateError(f"invalid insert position {at}")
        if not masks:
            raise UpdateError("cannot insert an empty subtree")
        before = dol.n_transitions
        own = len(transitions_from_masks(masks))
        k = len(masks)

        pairs = self._segment_pairs()
        rebuilt: List[Tuple[int, int]] = []
        for pos, mask in pairs:
            if pos < at:
                rebuilt.append((pos, mask))
        for offset, mask in enumerate(masks):
            rebuilt.append((at + offset, mask))
        if at < dol.n_nodes:
            rebuilt.append((at + k, dol.mask_at(at)))
            for pos, mask in pairs:
                if pos > at:
                    rebuilt.append((pos + k, mask))

        dol.n_nodes += k
        self._install(rebuilt)
        delta = dol.n_transitions - before - own
        self._record("insert_range", at=at, n_nodes=k, delta=delta)
        return delta

    def delete_range(self, start: int, end: int) -> int:
        """Delete the nodes in [start, end) (a subtree). Returns the delta."""
        dol = self.dol
        if not 0 <= start < end <= dol.n_nodes:
            raise UpdateError(f"invalid range [{start}, {end})")
        if end - start == dol.n_nodes:
            raise UpdateError("cannot delete the entire document")
        before = dol.n_transitions
        k = end - start

        pairs = self._segment_pairs()
        rebuilt: List[Tuple[int, int]] = []
        for pos, mask in pairs:
            if pos < start:
                rebuilt.append((pos, mask))
        if end < dol.n_nodes:
            rebuilt.append((start, dol.mask_at(end)))
            for pos, mask in pairs:
                if pos > end:
                    rebuilt.append((pos - k, mask))

        dol.n_nodes -= k
        self._install(rebuilt)
        delta = dol.n_transitions - before
        self._record("delete_range", start=start, end=end, delta=delta)
        return delta

    def move_range(self, start: int, end: int, to: int) -> int:
        """Move the subtree [start, end) so it begins at position ``to``.

        ``to`` is interpreted in the coordinates of the document *after*
        the subtree is excised. Returns the total transition delta.
        """
        dol = self.dol
        if not 0 <= start < end <= dol.n_nodes:
            raise UpdateError(f"invalid range [{start}, {end})")
        masks = dol.to_masks()[start:end]
        before = dol.n_transitions
        self.delete_range(start, end)
        if not 0 <= to <= dol.n_nodes:
            raise UpdateError(f"invalid destination {to}")
        self.insert_range(to, masks)
        return dol.n_transitions - before

    # -- Proposition 1 ------------------------------------------------------------

    @staticmethod
    def check_proposition1(delta: int, operation: str = "update") -> None:
        """Raise if an operation violated Proposition 1 (delta > 2)."""
        if delta > 2:
            raise UpdateError(
                f"Proposition 1 violated: {operation} added {delta} transitions"
            )

    # -- internals ------------------------------------------------------------------

    def _segment_pairs(self) -> List[Tuple[int, int]]:
        dol = self.dol
        return [
            (pos, dol.codebook.decode(code))
            for pos, code in zip(dol.positions, dol.codes)
        ]

    def _install(self, pairs: List[Tuple[int, int]]) -> None:
        """Install a candidate segment list, dropping redundant transitions."""
        dol = self.dol
        positions: List[int] = []
        codes: List[int] = []
        previous_mask: Optional[int] = None
        for pos, mask in pairs:
            if mask == previous_mask:
                continue
            positions.append(pos)
            codes.append(dol.codebook.encode(mask))
            previous_mask = mask
        dol.positions = positions
        dol.codes = codes
        # Every updater mutation funnels through here; bumping the run
        # epoch invalidates cached run lists keyed on the old content.
        dol._bump_runs_epoch()
