"""DOL — Document Ordered Labeling (the paper's core contribution).

A DOL represents a secured tree's access control data as:

- a list of *transition nodes* — document positions whose access control
  list differs from their document-order predecessor (the root is always a
  transition node), each carrying a small integer *access control code*, and
- a *codebook* mapping each code to the distinct access control list
  (subject bitmask) it stands for.

Structural locality keeps transitions few; inter-subject correlation keeps
the codebook small. See Section 2 of the paper.
"""

from repro.dol.codebook import Codebook
from repro.dol.labeling import DOL, transition_count, transitions_from_masks
from repro.dol.stream import build_dol_streaming
from repro.dol.updates import DOLUpdater

__all__ = [
    "Codebook",
    "DOL",
    "DOLUpdater",
    "build_dol_streaming",
    "transition_count",
    "transitions_from_masks",
]
